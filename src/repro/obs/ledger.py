"""The persistent run ledger: append-only quality telemetry across runs.

PR 3's observability layer instruments a *single* process; everything it
collects evaporates on exit.  The ledger is the cross-run complement: an
append-only, schema-versioned JSONL store (``results/ledger/runs.jsonl``
by default) holding one :func:`build_record` dict per solver or
experiment run, so questions like "did this commit move s9234's total
device cost or average IOB utilization (paper eq. 1-2)?" become a
``repro-fpga runs diff`` instead of a manual re-run.

Each record is keyed by the tuple that determines solver output:

* ``netlist_hash`` -- :func:`netlist_fingerprint` over the mapped
  netlist's cells, pins, supports and pads;
* ``config_fingerprint`` -- :func:`config_fingerprint` over the
  canonicalized solver configuration;
* ``seed`` -- the run seed;

hashed together into ``run_key``.  Two runs with equal ``run_key`` must
produce identical quality vectors (the solvers are deterministic per
seed); everything that legitimately varies -- timestamps, host info, git
revision, wall-clock -- lives in :data:`VOLATILE_KEYS` and is ignored by
:func:`stable_view` and by :mod:`repro.obs.compare`.

The quality vector captures the paper's objectives: cut (experiment 1),
total device cost ``$_k`` (eq. 1), average IOB utilization ``bar t_k``
(eq. 2), per-device utilization, replication fraction and feasibility.
``convergence`` distills the per-pass / per-carve series from the
in-process event stream (``kway.carve_committed``, ``fm.run_gains``,
``repl.run_gains``, ``runner.*``).

Enablement mirrors the metrics registry: the process default is *no*
ledger (one ``resolve_ledger() is None`` check per ``repro.api`` verb,
never inside solver loops), an explicit :class:`Ledger` can be installed
with :func:`set_ledger` / :func:`use_ledger`, and the ``REPRO_LEDGER``
environment variable supplies a process-wide default path.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import subprocess
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs.events import ListEmitter, read_jsonl
from repro.obs.metrics import MetricsRegistry, get_registry, use_registry

#: Version stamped into every ledger record as ``v``.
LEDGER_SCHEMA_VERSION = 1

#: Stream identifier written in every record's ``schema`` field.
LEDGER_SCHEMA_NAME = "repro-run-ledger/1"

#: Default ledger directory (relative to the working directory).
DEFAULT_LEDGER_DIR = os.path.join("results", "ledger")

#: File name of the append-only record stream inside a ledger directory.
LEDGER_FILENAME = "runs.jsonl"

#: Environment variable supplying a process-wide default ledger path.
LEDGER_ENV_VAR = "REPRO_LEDGER"

#: Record kinds a conforming ledger may contain.
RECORD_KINDS = ("partition", "bipartition", "experiment", "bench")

#: Top-level record fields that may differ between re-runs of the same
#: (netlist, config, seed) without the quality having drifted.
VOLATILE_KEYS = (
    "run_id", "ts", "iso_ts", "git_rev", "host", "timing", "runner", "trace_id",
)

#: Cap on the number of per-run pass-gain series kept in ``convergence``
#: (the k-way candidate scan produces one per candidate engine run).
MAX_PASS_SERIES = 32

#: Cap on the number of multilevel per-level entries kept in
#: ``convergence`` (one ``ml.level`` event per level per V-cycle descent).
MAX_ML_LEVELS = 120


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into strict-JSON-safe data.

    ``inf`` / ``nan`` are mapped to strings (strict JSON has no literal
    for them and the paper's ``T = inf`` baseline must round-trip).
    """
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_jsonable(v) for v in items]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering used for every fingerprint."""
    return json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))


def fingerprint(payload: Any, length: int = 16) -> str:
    """Truncated sha256 over :func:`canonical_json` of ``payload``."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return digest[:length]


def netlist_fingerprint(mapped: Any) -> str:
    """Stable hash of a mapped netlist's partition-relevant structure.

    Covers cell names, input/output pins, output support sets and the
    I/O pads -- everything the carve flow reads.  Truth tables are
    excluded deliberately: two circuits with identical connectivity
    partition identically.
    """
    payload = {
        "name": mapped.name,
        "pis": list(mapped.primary_inputs),
        "pos": list(mapped.primary_outputs),
        "cells": [
            [
                cell.name,
                list(cell.inputs),
                list(cell.outputs),
                [sorted(sup) for sup in cell.supports],
            ]
            for cell in mapped.cells
        ],
    }
    return fingerprint(payload)


def config_fingerprint(config: Dict[str, Any]) -> str:
    """Hash of a canonicalized configuration dict."""
    return fingerprint(config)


def run_key(netlist_hash: str, config_fp: str, seed: int) -> str:
    """The identity under which quality must be reproducible."""
    return fingerprint({"netlist": netlist_hash, "config": config_fp, "seed": seed}, 12)


_GIT_REV_CACHE: Dict[str, Optional[str]] = {}


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Best-effort ``git rev-parse HEAD`` (cached; ``None`` outside a repo)."""
    key = os.path.abspath(cwd or os.getcwd())
    if key not in _GIT_REV_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=key,
                capture_output=True,
                text=True,
                timeout=5,
            )
            rev = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            rev = None
        _GIT_REV_CACHE[key] = rev or None
    return _GIT_REV_CACHE[key]


# ---------------------------------------------------------------------------
# Quality vectors
# ---------------------------------------------------------------------------


def quality_from_kway(solution: Any) -> Dict[str, Any]:
    """Quality vector of a :class:`~repro.partition.kway.KWaySolution`."""
    cost = solution.cost
    return {
        "k": solution.k,
        "total_cost": cost.total_cost,
        "device_counts": dict(sorted(cost.device_counts.items())),
        "avg_clb_utilization": cost.avg_clb_utilization,
        "avg_iob_utilization": cost.avg_iob_utilization,
        "replicated_fraction": solution.replicated_fraction,
        "feasible": solution.feasible,
        "truncated": solution.truncated,
        "n_instances": solution.n_instances,
        "n_cells": solution.n_original_cells,
        "blocks": [
            {
                "device": b.device.name,
                "clbs": b.n_clbs,
                "terminals": b.terminals,
                "clb_utilization": b.n_clbs / b.device.clbs if b.device.clbs else 0.0,
                "iob_utilization": (
                    b.terminals / b.device.terminals if b.device.terminals else 0.0
                ),
            }
            for b in solution.blocks
        ],
    }


def quality_from_kway_report(report: Any) -> Dict[str, Any]:
    """Quality vector of a :class:`~repro.core.results.KWayReport`."""
    return {
        "k": report.k,
        "total_cost": report.total_cost,
        "device_counts": dict(sorted(report.device_counts.items())),
        "avg_clb_utilization": report.avg_clb_utilization,
        "avg_iob_utilization": report.avg_iob_utilization,
        "replicated_fraction": report.replicated_fraction,
        "feasible": report.feasible,
        "n_instances": report.n_instances,
        "n_cells": report.n_cells,
    }


def quality_from_bipartition(report: Any) -> Dict[str, Any]:
    """Quality vector of a :class:`~repro.core.results.BipartitionReport`."""
    return {
        "algorithm": report.algorithm,
        "runs": report.runs,
        "best_cut": report.best_cut,
        "avg_cut": report.avg_cut,
        "cuts": list(report.cuts),
        "avg_replicated": report.avg_replicated,
        "replicated_counts": list(report.replicated_counts),
        "n_cells": report.n_cells,
    }


# ---------------------------------------------------------------------------
# Convergence distillation
# ---------------------------------------------------------------------------


def distill_convergence(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Distill per-carve / per-pass convergence series from an event stream.

    ``events`` are dicts in the ``repro-obs-events/1`` shape (from a
    :class:`~repro.obs.events.ListEmitter` or a parsed JSONL trace).
    Returns a dict with:

    * ``carves`` -- one entry per committed k-way carve level plus the
      final block, in order (cut, terminals, replication per level);
    * ``pass_series`` -- per-engine-run FM/replication pass-gain vectors
      (``fm.run_gains`` / ``repl.run_gains`` events), capped at
      :data:`MAX_PASS_SERIES` with ``pass_series_dropped`` counting the
      overflow;
    * ``runner_attempts`` -- resilient-runner attempt outcomes, when the
      run went through :class:`~repro.robust.runner.ResilientRunner`;
    * ``multilevel`` -- the V-cycle profile (``ml.level`` events: level
      index, cells, nets, cut after refinement, match rate), capped at
      :data:`MAX_ML_LEVELS` with ``multilevel_dropped`` counting the
      overflow;
    * ``incremental`` -- present only for warm incremental re-solves
      (``incr.warm`` event: dirty cells, warm speedup, ancestor key), so
      ledger records distinguish warm from cold runs.
    """
    carves: List[Dict[str, Any]] = []
    pass_series: List[Dict[str, Any]] = []
    dropped = 0
    runner_attempts: List[Dict[str, Any]] = []
    ml_levels: List[Dict[str, Any]] = []
    ml_dropped = 0
    incremental: Optional[Dict[str, Any]] = None
    for event in events:
        if event.get("kind") != "event":
            continue
        name = event.get("name")
        fields = event.get("fields") or {}
        if name == "kway.carve_committed":
            carves.append(
                {
                    "level": fields.get("level"),
                    "device": fields.get("device"),
                    "clbs": fields.get("clbs0"),
                    "terminals": fields.get("terminals"),
                    "cut": fields.get("cut"),
                    "replicated": fields.get("replicated"),
                }
            )
        elif name == "kway.final_block":
            carves.append(
                {
                    "level": fields.get("level"),
                    "device": fields.get("device"),
                    "clbs": fields.get("clbs"),
                    "terminals": None,
                    "cut": 0,
                    "replicated": 0,
                    "final": True,
                }
            )
        elif name in ("fm.run_gains", "repl.run_gains"):
            if len(pass_series) < MAX_PASS_SERIES:
                pass_series.append(
                    {
                        "engine": "fm" if name == "fm.run_gains" else "repl",
                        "seed": fields.get("seed"),
                        "initial_cut": fields.get("initial_cut"),
                        "final_cut": fields.get("final_cut"),
                        "gains": fields.get("gains"),
                    }
                )
            else:
                dropped += 1
        elif name == "runner.attempt":
            runner_attempts.append(
                {
                    "engine": fields.get("engine"),
                    "attempt": fields.get("attempt"),
                    "seed": fields.get("seed"),
                    "outcome": fields.get("outcome"),
                }
            )
        elif name == "incr.warm":
            incremental = {
                "dirty_cells": fields.get("dirty_cells"),
                "speedup": fields.get("speedup"),
                "ancestor": fields.get("ancestor"),
            }
        elif name == "ml.level":
            if len(ml_levels) < MAX_ML_LEVELS:
                ml_levels.append(
                    {
                        "level": fields.get("level"),
                        "cells": fields.get("cells"),
                        "nets": fields.get("nets"),
                        "cut": fields.get("cut"),
                        "match_rate": fields.get("match_rate"),
                    }
                )
            else:
                ml_dropped += 1
    out: Dict[str, Any] = {"carves": carves, "pass_series": pass_series}
    if dropped:
        out["pass_series_dropped"] = dropped
    if runner_attempts:
        out["runner_attempts"] = runner_attempts
    if ml_levels:
        out["multilevel"] = ml_levels
        if ml_dropped:
            out["multilevel_dropped"] = ml_dropped
    if incremental is not None:
        # Marks the record as a warm incremental re-solve (ledger diffs
        # can tell warm from cold without consulting the cache).
        out["incremental"] = incremental
    return out


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


def build_record(
    kind: str,
    circuit: str,
    config: Dict[str, Any],
    seed: int,
    quality: Dict[str, Any],
    netlist_hash: Optional[str] = None,
    mapped: Any = None,
    convergence: Optional[Dict[str, Any]] = None,
    elapsed_seconds: Optional[float] = None,
    runner_summary: Optional[Dict[str, Any]] = None,
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one schema-conforming ledger record.

    Pass either ``mapped`` (fingerprinted here) or a precomputed
    ``netlist_hash``; experiment-suite records that aggregate several
    circuits may pass neither, in which case the hash is derived from
    the circuit label.  ``trace_id`` links the record to the run's
    observability stream; like timing it is volatile -- excluded from
    :func:`stable_view` and the determinism contract.
    """
    if kind not in RECORD_KINDS:
        raise ValueError(f"unknown record kind {kind!r}; expected {RECORD_KINDS}")
    if netlist_hash is None:
        netlist_hash = (
            netlist_fingerprint(mapped) if mapped is not None
            else fingerprint({"circuit": circuit})
        )
    config = _jsonable(config)
    config_fp = config_fingerprint(config)
    key = run_key(netlist_hash, config_fp, seed)
    now = time.time()
    record: Dict[str, Any] = {
        "v": LEDGER_SCHEMA_VERSION,
        "schema": LEDGER_SCHEMA_NAME,
        "run_id": fingerprint({"key": key, "ts": now, "pid": os.getpid()}, 12),
        "run_key": key,
        "ts": now,
        "iso_ts": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(now)) + "Z",
        "kind": kind,
        "circuit": circuit,
        "netlist_hash": netlist_hash,
        "config": config,
        "config_fingerprint": config_fp,
        "seed": seed,
        "git_rev": git_revision(),
        "host": {
            "python": platform.python_version(),
            "platform": platform.system(),
            "machine": platform.machine(),
            "pid": os.getpid(),
        },
        "quality": _jsonable(quality),
        "convergence": _jsonable(convergence or {"carves": [], "pass_series": []}),
        "timing": {"elapsed_seconds": elapsed_seconds},
    }
    if runner_summary is not None:
        record["runner"] = _jsonable(runner_summary)
    if trace_id is not None:
        record["trace_id"] = trace_id
    return record


def stable_view(record: Dict[str, Any]) -> Dict[str, Any]:
    """The record minus :data:`VOLATILE_KEYS`.

    Two runs of the same (netlist, config, seed) must agree on this
    view exactly -- the determinism contract the tests and the CI drift
    gate rely on.
    """
    return {k: v for k, v in record.items() if k not in VOLATILE_KEYS}


def validate_record(record: Any) -> List[str]:
    """Schema-check one ledger record; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]

    def check(cond: bool, message: str) -> None:
        if not cond:
            problems.append(message)

    check(record.get("v") == LEDGER_SCHEMA_VERSION,
          f"v={record.get('v')!r}, expected {LEDGER_SCHEMA_VERSION}")
    check(record.get("schema") == LEDGER_SCHEMA_NAME,
          f"schema={record.get('schema')!r}, expected {LEDGER_SCHEMA_NAME}")
    check(record.get("kind") in RECORD_KINDS,
          f"unknown kind {record.get('kind')!r}")
    for field in ("run_id", "run_key", "circuit", "netlist_hash",
                  "config_fingerprint"):
        check(isinstance(record.get(field), str) and bool(record.get(field)),
              f"{field} must be a non-empty string")
    check(isinstance(record.get("ts"), (int, float)), "ts must be a number")
    check(isinstance(record.get("seed"), int), "seed must be an int")
    check(isinstance(record.get("config"), dict), "config must be an object")
    check(isinstance(record.get("quality"), dict), "quality must be an object")
    check(isinstance(record.get("convergence"), dict),
          "convergence must be an object")
    if "trace_id" in record:
        check(isinstance(record["trace_id"], str) and bool(record["trace_id"]),
              "trace_id must be a non-empty string")
    return problems


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class Ledger:
    """Append-only JSONL run store.

    ``path`` may be a directory (records land in
    ``<path>/runs.jsonl``) or a ``.jsonl`` file path.  Appends are
    line-atomic (one ``write`` per record on an append-mode handle
    opened per call), so concurrent runs interleave whole records.
    """

    def __init__(self, path: str = DEFAULT_LEDGER_DIR) -> None:
        if path.endswith(".jsonl"):
            self.path = path
        else:
            self.path = os.path.join(path, LEDGER_FILENAME)

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and append one record; returns it."""
        problems = validate_record(record)
        if problems:
            raise ValueError(
                f"refusing to append malformed ledger record: {problems}"
            )
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(_jsonable(record), sort_keys=True) + "\n")
        return record

    def records(self) -> List[Dict[str, Any]]:
        """Every record in append order (empty when no file yet)."""
        if not os.path.exists(self.path):
            return []
        return read_jsonl(self.path, skip_invalid=True)

    def find(self, token: str) -> Dict[str, Any]:
        """Resolve ``token`` to one record.

        Accepted forms: an integer index into append order (negative
        counts from the end), ``"latest"``, a ``run_id`` prefix, or a
        path to a JSONL file whose first record is used (golden files).
        """
        if os.path.isfile(token) and token != self.path:
            rows = read_jsonl(token)
            if not rows:
                raise LookupError(f"no records in {token!r}")
            return rows[0]
        rows = self.records()
        if not rows:
            raise LookupError(f"ledger {self.path!r} is empty")
        if token == "latest":
            return rows[-1]
        try:
            return rows[int(token)]
        except (ValueError, IndexError):
            pass
        matches = [r for r in rows if str(r.get("run_id", "")).startswith(token)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise LookupError(f"no record matching {token!r} in {self.path}")
        raise LookupError(
            f"{token!r} is ambiguous: {len(matches)} records match in {self.path}"
        )

    def latest(self, **filters: Any) -> Optional[Dict[str, Any]]:
        """The newest record whose top-level fields match ``filters``."""
        for record in reversed(self.records()):
            if all(record.get(k) == v for k, v in filters.items()):
                return record
        return None


# ---------------------------------------------------------------------------
# Process-local enablement (mirrors repro.obs.metrics)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Ledger] = None


def get_ledger() -> Optional[Ledger]:
    """The explicitly installed process-local ledger, or ``None``."""
    return _ACTIVE


def set_ledger(ledger: Optional[Ledger]) -> Optional[Ledger]:
    """Install ``ledger`` process-wide (``None`` disables again)."""
    global _ACTIVE
    _ACTIVE = ledger
    return _ACTIVE


@contextmanager
def use_ledger(ledger: Ledger) -> Iterator[Ledger]:
    """Scoped :func:`set_ledger`: restores the previous ledger on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ledger
    try:
        yield ledger
    finally:
        _ACTIVE = previous


def resolve_ledger(explicit: Optional[str] = None) -> Optional[Ledger]:
    """The ledger in effect: ``explicit`` path > installed > environment.

    This is the single check ``repro.api`` pays per verb in disabled
    mode -- the solvers themselves never consult the ledger.
    """
    if explicit:
        return Ledger(explicit)
    if _ACTIVE is not None:
        return _ACTIVE
    env = os.environ.get(LEDGER_ENV_VAR)
    if env:
        return Ledger(DEFAULT_LEDGER_DIR if env.lower() in ("1", "true") else env)
    return None


@contextmanager
def capture_events(enabled: bool = True) -> Iterator[List[Dict[str, Any]]]:
    """Capture the obs event stream of a scope for ledger distillation.

    Yields the live list the events accumulate into.  When the active
    registry is disabled, a fresh enabled registry with a
    :class:`~repro.obs.events.ListEmitter` is installed for the scope
    (tracing is guaranteed result-neutral, see ``tests/test_obs.py``);
    when an enabled registry with a ``ListEmitter`` is already active,
    its list is reused; any other emitter yields an empty capture
    rather than disturb the caller's trace.
    """
    if not enabled:
        yield []
        return
    active = get_registry()
    if active.enabled:
        emitter = active.emitter
        yield emitter.events if isinstance(emitter, ListEmitter) else []
        return
    registry = MetricsRegistry(enabled=True, emitter=ListEmitter())
    with use_registry(registry):
        yield registry.emitter.events


__all__ = [
    "LEDGER_SCHEMA_NAME",
    "LEDGER_SCHEMA_VERSION",
    "DEFAULT_LEDGER_DIR",
    "LEDGER_ENV_VAR",
    "RECORD_KINDS",
    "VOLATILE_KEYS",
    "Ledger",
    "build_record",
    "canonical_json",
    "capture_events",
    "config_fingerprint",
    "distill_convergence",
    "fingerprint",
    "get_ledger",
    "git_revision",
    "netlist_fingerprint",
    "quality_from_bipartition",
    "quality_from_kway",
    "quality_from_kway_report",
    "resolve_ledger",
    "run_key",
    "set_ledger",
    "stable_view",
    "use_ledger",
    "validate_record",
]
