"""JSON-lines event stream: emitters, schema and validation.

Every observability artifact -- finished spans, ad-hoc events, final
metric values -- is serialized as one JSON object per line so traces can
be streamed, tailed, grepped and post-processed without loading a run
into memory.  The schema (``repro-obs-events/1``) is deliberately flat:

* common fields: ``v`` (schema version, always ``1``), ``ts`` (epoch
  seconds of the record), ``kind`` and ``name``;
* ``kind="meta"`` -- one header line per stream (``schema``, python
  version, pid);
* ``kind="span"`` -- a finished trace span: ``id``, ``parent`` (span id
  or ``None``), ``depth``, ``dur_s`` (``time.perf_counter`` delta),
  optional ``start_ts`` (wall-clock epoch seconds at span entry, the
  anchor timeline exporters need), optional ``cpu_s``
  (``time.process_time`` delta, profiling mode) and ``attrs`` (span
  attributes);
* ``kind="event"`` -- an ad-hoc structured event with ``fields``
  (e.g. the resilient runner's attempt/degrade/checkpoint decisions);
* ``kind="counter"`` / ``"gauge"`` -- a final metric ``value``;
* ``kind="histogram"`` -- ``count``, ``sum``, ``min``, ``max`` and
  ``buckets`` as ``[upper_bound, count]`` pairs (the last bound is
  ``null`` for the overflow bucket).

Any line may additionally carry ``trace`` -- the trace id of the request
whose work emitted it (see :mod:`repro.obs.telemetry`); streams from
before trace propagation simply omit it, so the field is schema-additive.

:func:`validate_event` / :func:`validate_jsonl_file` check conformance
without any third-party JSON-schema dependency; the CI workflow runs the
file validator over a traced quick partition.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from typing import Any, Dict, IO, Iterable, List, Tuple, Union

#: Version stamped into every event line as ``v``.
EVENT_SCHEMA_VERSION = 1

#: Stream identifier written in the ``meta`` header line.
EVENT_SCHEMA_NAME = "repro-obs-events/1"

#: Every ``kind`` a conforming stream may contain.
EVENT_KINDS = ("meta", "span", "event", "counter", "gauge", "histogram")

_NUMBER = (int, float)


class ListEmitter:
    """In-memory emitter collecting event dicts (tests, `analyze`)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:  # symmetry with JsonlEmitter
        pass


class TeeEmitter:
    """Fan one event stream out to several emitters (e.g. JSONL + list).

    The CLI uses this when a run is both traced (``--trace``) and
    ledger-logged (``--ledger``): the JSONL file gets the full stream
    while an in-memory :class:`ListEmitter` feeds the ledger's
    convergence distillation.
    """

    def __init__(self, *emitters: Any) -> None:
        self.emitters = list(emitters)

    def emit(self, event: Dict[str, Any]) -> None:
        for emitter in self.emitters:
            emitter.emit(event)

    def close(self) -> None:
        for emitter in self.emitters:
            emitter.close()


class JsonlEmitter:
    """Append events to a file (or file-like object) as JSON lines.

    ``append=True`` opens a path in append mode -- pool workers reopen
    their per-process stream file between tasks, so each reopen adds a
    fresh ``meta`` header and the file accumulates one multi-task stream
    (the validator accepts multiple meta lines).
    """

    def __init__(self, target: Union[str, IO[str]], append: bool = False) -> None:
        if isinstance(target, (str, os.PathLike)):
            mode = "a" if append else "w"
            self._fh: IO[str] = open(target, mode, encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def emit(self, event: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(event, sort_keys=True, default=str))
        self._fh.write("\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class LineWriter:
    """A thread-safe whole-line sink for progress/event streams.

    ``print(text, file=fh)`` issues *two* writes (the text, then the
    newline), so concurrent writers -- batch progress callbacks with
    ``--jobs > 1``, service dispatch tasks, the cluster scheduler's
    threads -- can interleave mid-line and tear the stream.  This writer
    joins line + terminator into one string and hands it to the
    underlying file in a single ``write`` call under a lock, then
    flushes, so every line lands whole and in emission order.

    Wraps an open file-like object (commonly ``sys.stderr`` or a socket
    makefile); ``close()`` only closes targets opened here by path.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, (str, os.PathLike)):
            self._fh: IO[str] = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._lock = threading.Lock()

    def write_line(self, line: str) -> None:
        """Write ``line`` (newline appended) atomically and flush."""
        data = line if line.endswith("\n") else line + "\n"
        with self._lock:
            self._fh.write(data)
            self._fh.flush()

    def write_json(self, payload: Dict[str, Any]) -> None:
        """Serialize ``payload`` as one compact JSON line (JSONL)."""
        self.write_line(json.dumps(payload, sort_keys=True, default=str))

    def close(self) -> None:
        with self._lock:
            self._fh.flush()
            if self._owns:
                self._fh.close()


def meta_event() -> Dict[str, Any]:
    """The stream header line (write it first)."""
    return {
        "v": EVENT_SCHEMA_VERSION,
        "ts": time.time(),
        "kind": "meta",
        "name": "stream",
        "schema": EVENT_SCHEMA_NAME,
        "python": platform.python_version(),
        "pid": os.getpid(),
    }


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def _check(cond: bool, problems: List[str], message: str) -> None:
    if not cond:
        problems.append(message)


def validate_event(event: Any) -> List[str]:
    """Schema-check one event dict; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, expected object"]
    _check(event.get("v") == EVENT_SCHEMA_VERSION, problems,
           f"v={event.get('v')!r}, expected {EVENT_SCHEMA_VERSION}")
    _check(isinstance(event.get("ts"), _NUMBER), problems, "ts must be a number")
    kind = event.get("kind")
    _check(kind in EVENT_KINDS, problems, f"unknown kind {kind!r}")
    _check(isinstance(event.get("name"), str) and bool(event.get("name")),
           problems, "name must be a non-empty string")
    if "trace" in event:
        _check(isinstance(event["trace"], str) and bool(event["trace"]),
               problems, "trace must be a non-empty string")
    if problems:
        return problems
    if kind == "meta":
        _check(event.get("schema") == EVENT_SCHEMA_NAME, problems,
               f"meta schema={event.get('schema')!r}")
    elif kind == "span":
        _check(isinstance(event.get("id"), int), problems, "span id must be int")
        parent = event.get("parent")
        _check(parent is None or isinstance(parent, int), problems,
               "span parent must be int or null")
        _check(isinstance(event.get("depth"), int) and event["depth"] >= 0,
               problems, "span depth must be int >= 0")
        dur = event.get("dur_s")
        _check(isinstance(dur, _NUMBER) and dur >= 0, problems,
               "span dur_s must be a number >= 0")
        if "start_ts" in event:
            _check(
                isinstance(event["start_ts"], _NUMBER) and event["start_ts"] >= 0,
                problems, "span start_ts must be a number >= 0",
            )
        if "cpu_s" in event:
            _check(isinstance(event["cpu_s"], _NUMBER), problems,
                   "span cpu_s must be a number")
        _check(isinstance(event.get("attrs"), dict), problems,
               "span attrs must be an object")
    elif kind == "event":
        _check(isinstance(event.get("fields"), dict), problems,
               "event fields must be an object")
    elif kind in ("counter", "gauge"):
        _check(isinstance(event.get("value"), _NUMBER), problems,
               f"{kind} value must be a number")
    elif kind == "histogram":
        for field in ("count", "sum"):
            _check(isinstance(event.get(field), _NUMBER), problems,
                   f"histogram {field} must be a number")
        buckets = event.get("buckets")
        ok = isinstance(buckets, list) and all(
            isinstance(b, list)
            and len(b) == 2
            and (b[0] is None or isinstance(b[0], _NUMBER))
            and isinstance(b[1], int)
            for b in buckets
        )
        _check(ok, problems, "histogram buckets must be [bound|null, count] pairs")
    return [f"{kind} {event.get('name')!r}: {p}" for p in problems]


def validate_events(events: Iterable[Any]) -> List[str]:
    """Validate a sequence of event dicts; problems are line-prefixed."""
    problems: List[str] = []
    saw_meta = False
    n = 0
    for n, event in enumerate(events, start=1):
        for problem in validate_event(event):
            problems.append(f"line {n}: {problem}")
        if isinstance(event, dict) and event.get("kind") == "meta":
            saw_meta = True
    if n == 0:
        problems.append("empty event stream")
    elif not saw_meta:
        problems.append("no meta header line in stream")
    return problems


def read_jsonl(path: str, skip_invalid: bool = False) -> List[Dict[str, Any]]:
    """Parse a JSONL file into event dicts.

    Raises ``ValueError`` on a malformed line unless ``skip_invalid`` is
    set, in which case bad lines (e.g. a torn tail left by a crashed
    writer) are dropped -- the run ledger reads in this mode so one
    interrupted append cannot poison the whole history.
    """
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for n, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if skip_invalid:
                    continue
                raise ValueError(f"{path}:{n}: not valid JSON: {exc}") from exc
    return events


def validate_jsonl_file(path: str) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Load and validate a JSONL event file; returns ``(events, problems)``."""
    try:
        events = read_jsonl(path)
    except (OSError, ValueError) as exc:
        return [], [str(exc)]
    return events, validate_events(events)
