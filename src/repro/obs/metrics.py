"""Process-local metrics: counters, gauges, histograms, and the registry.

Design constraints, in order:

1. **Disabled mode is near-free.**  The default process-wide registry is
   disabled; instrumented code follows the pattern::

       reg = get_registry()
       if reg.enabled:
           ...  # allocate instruments, time things, record

   so a disabled registry costs one attribute check at each
   instrumentation site (the sites themselves sit at pass/run/carve
   boundaries, never inside per-move loops).  ``reg.counter(...)`` on a
   disabled registry returns a shared null instrument whose ``inc`` is a
   no-op, so code that holds an instrument needs no further checks.
2. **Snapshots merge.**  Worker processes build their own enabled
   registries and ship :meth:`MetricsRegistry.snapshot` dicts back; the
   parent folds them in with :meth:`MetricsRegistry.merge_snapshot`
   (counters add, gauges last-write-wins, histograms merge bucket-wise).
   This is how :mod:`repro.perf.parallel` aggregates per-worker metrics.
3. **Everything serializes.**  :meth:`MetricsRegistry.flush_metrics`
   emits final metric values to the attached JSONL emitter using the
   schema of :mod:`repro.obs.events`.

The active registry is managed with :func:`get_registry` /
:func:`set_registry` / the :func:`use_registry` context manager; it is
process-local (worker processes start with the disabled default).
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs.events import meta_event
from repro.obs.trace import NULL_SPAN, Span, _NullSpan


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins numeric metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution metric with explicit upper-bound buckets.

    ``buckets`` are the finite upper bounds, in increasing order; one
    implicit overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def bucket_pairs(self) -> List[List[Any]]:
        """``[upper_bound, count]`` pairs; the overflow bound is ``None``."""
        return [[b, c] for b, c in zip(self.bounds, self.counts)] + [
            [None, self.counts[-1]]
        ]


class _NullCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """A process-local bundle of metrics, trace state and an emitter.

    ``enabled=False`` builds the null registry used as the process
    default: every instrument accessor returns a shared no-op object and
    :meth:`span` returns the shared null span, so instrumented code pays
    one boolean attribute check and nothing else.

    ``profile=True`` adds ``time.process_time`` deltas (``cpu_s``) to
    finished spans -- the "profiling hooks" mode, a little dearer per
    span but still cheap.
    """

    __slots__ = (
        "enabled",
        "profile",
        "emitter",
        "trace_id",
        "trace_dir",
        "_counters",
        "_gauges",
        "_histograms",
        "finished_spans",
        "_span_stack",
        "_next_span_id",
    )

    def __init__(
        self,
        enabled: bool = True,
        emitter: Optional[Any] = None,
        profile: bool = False,
        trace_id: Optional[str] = None,
        trace_dir: Optional[str] = None,
    ) -> None:
        self.enabled = enabled
        self.profile = profile
        self.emitter = emitter
        #: Trace id stamped (as ``trace``) on every line this registry
        #: emits while set; scoped via :meth:`trace_scope`.
        self.trace_id = trace_id
        #: When set, process-pool fan-outs give each worker registry a
        #: per-pid JSONL stream file under this directory, so worker-side
        #: spans become observable (and exportable) instead of dying with
        #: the worker.
        self.trace_dir = trace_dir
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: Finished span records (dicts in event-schema shape), kept even
        #: without an emitter so summaries work in-process.
        self.finished_spans: List[Dict[str, Any]] = []
        self._span_stack: List[Span] = []
        self._next_span_id = 0

    # -- instruments ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, buckets: Sequence[float]) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets)
        return h

    # -- tracing --------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> "Span | _NullSpan":
        """A context manager timing a hierarchical trace span."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    # -- trace context --------------------------------------------------
    @contextmanager
    def trace_scope(self, trace_id: Optional[str]) -> Iterator[None]:
        """Stamp lines emitted inside the block with ``trace_id``.

        A ``None`` id (or a disabled registry) makes this a no-op scope,
        so callers need not branch on whether a trace is active.
        """
        if not self.enabled or trace_id is None:
            yield
            return
        previous = self.trace_id
        self.trace_id = trace_id
        try:
            yield
        finally:
            self.trace_id = previous

    def stamp(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Attach the active trace id to ``record`` (in place)."""
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        return record

    # -- events ---------------------------------------------------------
    def emit_event(self, name: str, **fields: Any) -> None:
        """Emit an ad-hoc structured event (no-op when disabled)."""
        if not self.enabled or self.emitter is None:
            return
        self.emitter.emit(
            self.stamp(
                {
                    "v": 1,
                    "ts": time.time(),
                    "kind": "event",
                    "name": name,
                    "fields": fields,
                }
            )
        )

    def emit_meta(self) -> None:
        """Write the stream header line (call once, first)."""
        if self.enabled and self.emitter is not None:
            self.emitter.emit(meta_event())

    def flush_metrics(self) -> None:
        """Emit every metric's final value to the emitter."""
        if not self.enabled or self.emitter is None:
            return
        now = time.time()
        for name in sorted(self._counters):
            self.emitter.emit(
                self.stamp(
                    {"v": 1, "ts": now, "kind": "counter", "name": name,
                     "value": self._counters[name].value}
                )
            )
        for name in sorted(self._gauges):
            self.emitter.emit(
                self.stamp(
                    {"v": 1, "ts": now, "kind": "gauge", "name": name,
                     "value": self._gauges[name].value}
                )
            )
        for name in sorted(self._histograms):
            h = self._histograms[name]
            self.emitter.emit(
                self.stamp(
                    {"v": 1, "ts": now, "kind": "histogram", "name": name,
                     "count": h.count, "sum": h.sum, "min": h.min, "max": h.max,
                     "buckets": h.bucket_pairs()}
                )
            )

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A picklable dict of every metric's current value."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                }
                for n, h in self._histograms.items()
            },
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a worker snapshot into this registry.

        Counters add, gauges take the snapshot's value, histograms merge
        bucket-wise (bucket bounds must match an existing histogram of
        the same name, else the snapshot's bounds are adopted).
        """
        if not self.enabled or not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            h = self.histogram(name, data["bounds"])
            if list(h.bounds) != list(data["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ between "
                    "registry and snapshot"
                )
            for i, c in enumerate(data["counts"]):
                h.counts[i] += c
            h.count += data["count"]
            h.sum += data["sum"]
            for bound_field, pick in (("min", min), ("max", max)):
                other = data.get(bound_field)
                if other is None:
                    continue
                mine = getattr(h, bound_field)
                setattr(h, bound_field, other if mine is None else pick(mine, other))

    def close(self) -> None:
        """Flush metrics and close the emitter, if any."""
        self.flush_metrics()
        if self.emitter is not None:
            self.emitter.close()


#: The always-disabled registry every process starts with.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_ACTIVE: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-local active registry (the disabled default, usually)."""
    return _ACTIVE


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` restores the disabled default)."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY
    return _ACTIVE


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_registry`: restores the previous registry on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
