"""Run diffing: per-metric tolerances, drift verdicts and reports.

The other half of the run ledger (:mod:`repro.obs.ledger`): given two
records -- or a fresh run against a stored golden baseline --
:func:`diff_records` flattens both quality vectors into dotted scalar
metrics, applies per-metric :class:`Tolerance` rules (relative + absolute
band, and a *direction*: is an increase or a decrease the bad way?) and
produces a machine-readable :class:`RunDiff` whose ``verdict`` drives the
CI gate:

* ``identical`` -- every compared metric equal;
* ``ok``        -- differences exist but all inside tolerance;
* ``improved``  -- out-of-tolerance change, all in the good direction;
* ``drift``     -- out-of-tolerance change with no bad direction defined;
* ``regression``-- at least one out-of-tolerance change in the bad
  direction (or a structural change such as a removed metric).

:func:`render_text` prints the human view; :func:`render_html` writes a
self-contained (no-JS, no-CDN) HTML report with inline-SVG convergence
curves for ``repro-fpga runs report``.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.ledger import stable_view

#: Directions a metric can regress in.
INCREASE_BAD = "increase"
DECREASE_BAD = "decrease"

#: Per-metric statuses, ordered from benign to fatal.
STATUS_ORDER = ("same", "within", "improved", "drift", "regression")

#: Diff verdicts, ordered from benign to fatal.
VERDICT_ORDER = ("identical", "ok", "improved", "drift", "regression")


@dataclass(frozen=True)
class Tolerance:
    """Allowed movement for one metric before it counts as drift.

    A delta is inside the band when ``|cur - base| <= max(abs_tol,
    rel_tol * |base|)``.  ``worse`` names the direction that counts as a
    regression once outside the band (``None`` = any out-of-band change
    is direction-less "drift").
    """

    rel_tol: float = 0.0
    abs_tol: float = 0.0
    worse: Optional[str] = None  # INCREASE_BAD | DECREASE_BAD | None


#: Default tolerances by metric basename.  The solvers are deterministic
#: per seed, so the defaults are exact (zero-width bands) with the
#: paper-objective directions wired in: device cost (eq. 1), IOB
#: utilization (eq. 2), cut sizes and replication are better *down*;
#: CLB utilization and feasibility are better *up*.
DEFAULT_TOLERANCES: Dict[str, Tolerance] = {
    "total_cost": Tolerance(worse=INCREASE_BAD),
    "k": Tolerance(worse=INCREASE_BAD),
    "avg_iob_utilization": Tolerance(abs_tol=1e-9, worse=INCREASE_BAD),
    "avg_clb_utilization": Tolerance(abs_tol=1e-9, worse=DECREASE_BAD),
    "replicated_fraction": Tolerance(abs_tol=1e-9, worse=INCREASE_BAD),
    "best_cut": Tolerance(worse=INCREASE_BAD),
    "avg_cut": Tolerance(abs_tol=1e-9, worse=INCREASE_BAD),
    "avg_replicated": Tolerance(abs_tol=1e-9, worse=INCREASE_BAD),
    "cut": Tolerance(worse=INCREASE_BAD),
    "terminals": Tolerance(worse=INCREASE_BAD),
    "n_instances": Tolerance(worse=INCREASE_BAD),
}


def parse_tolerance(spec: str) -> Tuple[str, Tolerance]:
    """Parse a CLI tolerance override ``metric=REL%|+ABS|REL%+ABS``.

    Examples: ``total_cost=5%`` (5 % relative band),
    ``avg_iob_utilization=+0.01`` (absolute band),
    ``avg_cut=2%+0.5`` (both).  The metric keeps its default direction.
    """
    if "=" not in spec:
        raise ValueError(f"bad tolerance {spec!r}: expected metric=BAND")
    metric, band = spec.split("=", 1)
    metric = metric.strip()
    rel = abs_ = 0.0
    for part in band.replace("+", " ").split():
        if part.endswith("%"):
            rel = float(part[:-1]) / 100.0
        else:
            abs_ = float(part)
    base = DEFAULT_TOLERANCES.get(metric.rsplit(".", 1)[-1], Tolerance())
    return metric, Tolerance(rel_tol=rel, abs_tol=abs_, worse=base.worse)


def flatten(value: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts/lists into dotted scalar leaves."""
    out: Dict[str, Any] = {}
    if isinstance(value, dict):
        for key in sorted(value):
            out.update(flatten(value[key], f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(value, list):
        for i, item in enumerate(value):
            out.update(flatten(item, f"{prefix}.{i}" if prefix else str(i)))
    else:
        out[prefix] = value
    return out


def _tolerance_for(
    metric: str, tolerances: Optional[Dict[str, Tolerance]]
) -> Tolerance:
    merged = dict(DEFAULT_TOLERANCES)
    if tolerances:
        merged.update(tolerances)
    if metric in merged:
        return merged[metric]
    basename = metric.rsplit(".", 1)[-1]
    return merged.get(basename, Tolerance())


@dataclass
class MetricDelta:
    """One compared metric."""

    metric: str
    baseline: Any
    current: Any
    status: str  # one of STATUS_ORDER, or "added" / "removed"
    delta: Optional[float] = None
    rel_delta: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "rel_delta": self.rel_delta,
            "status": self.status,
        }


@dataclass
class RunDiff:
    """The machine-readable outcome of comparing two ledger records."""

    baseline_id: str
    current_id: str
    metrics: List[MetricDelta] = field(default_factory=list)
    #: Identity mismatches (netlist hash / config / seed) -- context, not
    #: failures: diffing across configs is legitimate, but the reader
    #: should know the runs were not answering the same question.
    warnings: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        worst = "identical"
        for delta in self.metrics:
            status = delta.status
            if status in ("added", "removed"):
                status = "regression" if status == "removed" else "drift"
            elif status == "within":
                status = "ok"
            elif status == "same":
                status = "identical"
            if VERDICT_ORDER.index(status) > VERDICT_ORDER.index(worst):
                worst = status
        return worst

    def changed(self) -> List[MetricDelta]:
        return [d for d in self.metrics if d.status != "same"]

    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.metrics if d.status in ("regression", "removed")]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_id,
            "current": self.current_id,
            "verdict": self.verdict,
            "warnings": list(self.warnings),
            "changed": [d.as_dict() for d in self.changed()],
            "metrics_compared": len(self.metrics),
        }


def _compare_leaf(
    metric: str, base: Any, cur: Any, tol: Tolerance
) -> MetricDelta:
    numeric = isinstance(base, (int, float)) and isinstance(cur, (int, float)) \
        and not isinstance(base, bool) and not isinstance(cur, bool)
    if not numeric:
        if base == cur:
            return MetricDelta(metric, base, cur, "same")
        # False-where-baseline-True feasibility is the one boolean with a
        # built-in bad direction.
        if isinstance(base, bool) and isinstance(cur, bool):
            status = "regression" if base and not cur else "improved"
            return MetricDelta(metric, base, cur, status)
        return MetricDelta(metric, base, cur, "drift")
    delta = cur - base
    rel = (delta / abs(base)) if base else None
    if delta == 0:
        return MetricDelta(metric, base, cur, "same", 0.0, 0.0)
    band = max(tol.abs_tol, tol.rel_tol * abs(base))
    if abs(delta) <= band:
        return MetricDelta(metric, base, cur, "within", delta, rel)
    if tol.worse is None:
        return MetricDelta(metric, base, cur, "drift", delta, rel)
    worse = delta > 0 if tol.worse == INCREASE_BAD else delta < 0
    return MetricDelta(
        metric, base, cur, "regression" if worse else "improved", delta, rel
    )


#: Record sections compared by :func:`diff_records` (quality vector plus
#: the deterministic carve-level convergence series).
COMPARED_SECTIONS = ("quality", "convergence.carves")


def diff_records(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerances: Optional[Dict[str, Tolerance]] = None,
) -> RunDiff:
    """Diff two ledger records metric by metric."""
    diff = RunDiff(
        baseline_id=str(baseline.get("run_id", "?")),
        current_id=str(current.get("run_id", "?")),
    )
    for ident in ("netlist_hash", "config_fingerprint", "seed", "kind", "circuit"):
        a, b = baseline.get(ident), current.get(ident)
        if a != b:
            diff.warnings.append(
                f"{ident} differs: baseline {a!r} vs current {b!r}"
            )
    base_stable, cur_stable = stable_view(baseline), stable_view(current)

    def section(record: Dict[str, Any], dotted: str) -> Any:
        node: Any = record
        for part in dotted.split("."):
            node = node.get(part, {}) if isinstance(node, dict) else {}
        return node

    for dotted in COMPARED_SECTIONS:
        base_flat = flatten(section(base_stable, dotted), dotted)
        cur_flat = flatten(section(cur_stable, dotted), dotted)
        for metric in sorted(set(base_flat) | set(cur_flat)):
            if metric not in cur_flat:
                diff.metrics.append(
                    MetricDelta(metric, base_flat[metric], None, "removed")
                )
            elif metric not in base_flat:
                diff.metrics.append(
                    MetricDelta(metric, None, cur_flat[metric], "added")
                )
            else:
                diff.metrics.append(
                    _compare_leaf(
                        metric,
                        base_flat[metric],
                        cur_flat[metric],
                        _tolerance_for(metric, tolerances),
                    )
                )
    return diff


def gate_exit_code(diff: RunDiff, strict: bool = False) -> int:
    """CI gate semantics: non-zero on quality drift.

    ``drift`` and ``regression`` always fail; ``strict`` additionally
    fails ``improved`` (golden-determinism gates want *any* movement
    flagged so the golden gets refreshed deliberately).
    """
    failing = ("drift", "regression", "improved") if strict else (
        "drift", "regression"
    )
    return 1 if diff.verdict in failing else 0


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_text(diff: RunDiff, show_same: bool = False) -> str:
    """Terminal rendering of a :class:`RunDiff`."""
    lines = [f"diff {diff.baseline_id} -> {diff.current_id}: {diff.verdict}"]
    for warning in diff.warnings:
        lines.append(f"  warning: {warning}")
    rows = diff.metrics if show_same else diff.changed()
    if not rows:
        lines.append(f"  {len(diff.metrics)} metrics compared, all identical")
    for delta in rows:
        extra = ""
        if delta.delta is not None and delta.status != "same":
            rel = f" ({delta.rel_delta:+.2%})" if delta.rel_delta is not None else ""
            extra = f"  delta {_fmt(delta.delta)}{rel}"
        lines.append(
            f"  [{delta.status:>10}] {delta.metric}: "
            f"{_fmt(delta.baseline)} -> {_fmt(delta.current)}{extra}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# HTML report with inline-SVG convergence curves
# ---------------------------------------------------------------------------

_SVG_W, _SVG_H, _SVG_PAD = 420, 160, 28


def _svg_curve(points: Sequence[Tuple[float, float]], label: str) -> str:
    """One self-contained SVG line chart (no JS, no external assets)."""
    if not points:
        return f"<p class='empty'>no convergence series for {html.escape(label)}</p>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    inner_w = _SVG_W - 2 * _SVG_PAD
    inner_h = _SVG_H - 2 * _SVG_PAD

    def sx(x: float) -> float:
        return _SVG_PAD + (x - x0) / xr * inner_w

    def sy(y: float) -> float:
        return _SVG_H - _SVG_PAD - (y - y0) / yr * inner_h

    path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    dots = "".join(
        f"<circle cx='{sx(x):.1f}' cy='{sy(y):.1f}' r='2.5' fill='#2563eb'/>"
        for x, y in points
    )
    return (
        f"<svg viewBox='0 0 {_SVG_W} {_SVG_H}' width='{_SVG_W}' height='{_SVG_H}' "
        "role='img'>"
        f"<title>{html.escape(label)}</title>"
        f"<rect width='{_SVG_W}' height='{_SVG_H}' fill='#f8fafc'/>"
        f"<line x1='{_SVG_PAD}' y1='{_SVG_H - _SVG_PAD}' x2='{_SVG_W - _SVG_PAD}' "
        f"y2='{_SVG_H - _SVG_PAD}' stroke='#94a3b8'/>"
        f"<line x1='{_SVG_PAD}' y1='{_SVG_PAD}' x2='{_SVG_PAD}' "
        f"y2='{_SVG_H - _SVG_PAD}' stroke='#94a3b8'/>"
        f"<polyline points='{path}' fill='none' stroke='#2563eb' "
        "stroke-width='1.5'/>"
        f"{dots}"
        f"<text x='{_SVG_PAD}' y='{_SVG_PAD - 10}' font-size='11' "
        f"fill='#334155'>{html.escape(label)}</text>"
        f"<text x='{_SVG_PAD - 4}' y='{_SVG_PAD + 4}' font-size='10' "
        f"text-anchor='end' fill='#64748b'>{_fmt(y1)}</text>"
        f"<text x='{_SVG_PAD - 4}' y='{_SVG_H - _SVG_PAD}' font-size='10' "
        f"text-anchor='end' fill='#64748b'>{_fmt(y0)}</text>"
        "</svg>"
    )


def _record_curves(record: Dict[str, Any]) -> str:
    conv = record.get("convergence") or {}
    charts: List[str] = []
    carves = conv.get("carves") or []
    cut_points = [
        (float(c.get("level", i)), float(c.get("cut", 0) or 0))
        for i, c in enumerate(carves)
    ]
    if cut_points:
        charts.append(_svg_curve(cut_points, "cut per carve level"))
        term_points = [
            (float(c.get("level", i)), float(c["terminals"]))
            for i, c in enumerate(carves)
            if c.get("terminals") is not None
        ]
        if term_points:
            charts.append(_svg_curve(term_points, "terminals per carve level"))
    for series in (conv.get("pass_series") or [])[:3]:
        gains = series.get("gains") or []
        if gains:
            charts.append(
                _svg_curve(
                    [(float(i), float(g)) for i, g in enumerate(gains)],
                    f"{series.get('engine', '?')} pass gains "
                    f"(seed {series.get('seed')})",
                )
            )
    return "\n".join(charts) if charts else "<p class='empty'>no curves</p>"


def _quality_rows(record: Dict[str, Any]) -> str:
    rows = []
    for key, value in sorted((record.get("quality") or {}).items()):
        if isinstance(value, (dict, list)):
            value = json.dumps(value, sort_keys=True)
        rows.append(
            f"<tr><td>{html.escape(str(key))}</td>"
            f"<td>{html.escape(_fmt(value))}</td></tr>"
        )
    return "".join(rows)


def render_html(
    records: Sequence[Dict[str, Any]],
    diffs: Sequence[RunDiff] = (),
    title: str = "Run ledger report",
) -> str:
    """A self-contained HTML quality report over ledger records."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        "<style>",
        "body{font-family:system-ui,sans-serif;margin:2rem;color:#0f172a}",
        "table{border-collapse:collapse;margin:.5rem 0}",
        "td,th{border:1px solid #cbd5e1;padding:.2rem .6rem;font-size:13px;"
        "text-align:left}",
        "h2{margin-top:2rem;border-bottom:1px solid #e2e8f0}",
        ".meta{color:#64748b;font-size:12px}",
        ".empty{color:#94a3b8;font-style:italic}",
        ".verdict-regression{color:#dc2626;font-weight:600}",
        ".verdict-drift{color:#d97706;font-weight:600}",
        ".verdict-improved{color:#16a34a;font-weight:600}",
        ".verdict-ok,.verdict-identical{color:#16a34a}",
        "svg{margin:.4rem .8rem .4rem 0}",
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='meta'>{len(records)} run(s), {len(diffs)} diff(s)</p>",
    ]
    for diff in diffs:
        parts.append(
            f"<h2>diff {html.escape(diff.baseline_id)} &rarr; "
            f"{html.escape(diff.current_id)}: "
            f"<span class='verdict-{diff.verdict}'>{diff.verdict}</span></h2>"
        )
        changed = diff.changed()
        if changed:
            parts.append(
                "<table><tr><th>metric</th><th>baseline</th><th>current</th>"
                "<th>delta</th><th>status</th></tr>"
            )
            for d in changed:
                parts.append(
                    f"<tr><td>{html.escape(d.metric)}</td>"
                    f"<td>{html.escape(_fmt(d.baseline))}</td>"
                    f"<td>{html.escape(_fmt(d.current))}</td>"
                    f"<td>{html.escape(_fmt(d.delta)) if d.delta is not None else ''}"
                    f"</td><td>{html.escape(d.status)}</td></tr>"
                )
            parts.append("</table>")
        else:
            parts.append("<p class='empty'>all compared metrics identical</p>")
        for warning in diff.warnings:
            parts.append(f"<p class='meta'>warning: {html.escape(warning)}</p>")
    for record in records:
        parts.append(
            f"<h2>{html.escape(str(record.get('kind')))} "
            f"{html.escape(str(record.get('circuit')))} "
            f"<span class='meta'>run {html.escape(str(record.get('run_id')))} "
            f"seed {record.get('seed')} "
            f"{html.escape(str(record.get('iso_ts', '')))}</span></h2>"
        )
        parts.append(
            f"<p class='meta'>netlist {html.escape(str(record.get('netlist_hash')))}"
            f" · config {html.escape(str(record.get('config_fingerprint')))}"
            f" · git {html.escape(str(record.get('git_rev') or 'n/a'))}</p>"
        )
        parts.append("<table><tr><th>quality metric</th><th>value</th></tr>")
        parts.append(_quality_rows(record))
        parts.append("</table>")
        parts.append(_record_curves(record))
    parts.append("</body></html>")
    return "\n".join(parts)


__all__ = [
    "DEFAULT_TOLERANCES",
    "INCREASE_BAD",
    "DECREASE_BAD",
    "COMPARED_SECTIONS",
    "MetricDelta",
    "RunDiff",
    "Tolerance",
    "diff_records",
    "flatten",
    "gate_exit_code",
    "parse_tolerance",
    "render_html",
    "render_text",
]
