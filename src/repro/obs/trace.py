"""Hierarchical trace spans.

A :class:`Span` is a context manager that times a region with
``time.perf_counter`` (and ``time.process_time`` in profiling mode),
tracks nesting through the owning registry's span stack, and -- on exit
-- appends a schema-shaped record to ``registry.finished_spans`` and
emits it to the registry's JSONL emitter when one is attached.

Spans are created through :meth:`repro.obs.metrics.MetricsRegistry.span`;
on a disabled registry that returns the shared :data:`NULL_SPAN`, whose
enter/exit do nothing, so disabled-mode tracing allocates nothing.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional


class _NullSpan:
    """Shared no-op span returned by disabled registries (reentrant)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One timed region of a trace; nest freely via ``with`` blocks."""

    __slots__ = (
        "registry",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "_wall_start",
        "_perf_start",
        "_cpu_start",
    )

    def __init__(self, registry: Any, name: str, attrs: Dict[str, Any]) -> None:
        self.registry = registry
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0
        self._wall_start = 0.0
        self._perf_start = 0.0
        self._cpu_start = 0.0

    def __enter__(self) -> "Span":
        reg = self.registry
        stack = reg._span_stack
        self.span_id = reg._next_span_id
        reg._next_span_id += 1
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = stack[-1].depth + 1
        stack.append(self)
        self._wall_start = time.time()
        if reg.profile:
            self._cpu_start = time.process_time()
        self._perf_start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        dur = time.perf_counter() - self._perf_start
        reg = self.registry
        record: Dict[str, Any] = {
            "v": 1,
            "ts": self._wall_start,
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            # Explicit wall-clock anchor: ``ts`` doubles as the start
            # today, but timeline exporters need the contract spelled
            # out, not inferred from emission order.
            "start_ts": self._wall_start,
            "dur_s": dur,
            "attrs": self.attrs,
        }
        if reg.profile:
            record["cpu_s"] = time.process_time() - self._cpu_start
        if reg.trace_id is not None:
            record["trace"] = reg.trace_id
        stack = reg._span_stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # defensive: unbalanced exits must not corrupt the stack
            try:
                stack.remove(self)
            except ValueError:
                pass
        reg.finished_spans.append(record)
        if reg.emitter is not None:
            reg.emitter.emit(record)
        return False
