"""Timeline export: ``repro-obs-events/1`` streams to Chrome trace JSON.

The Chrome trace-event format (the JSON Perfetto and ``chrome://tracing``
load directly) wants microsecond timestamps, complete-slice (``"X"``)
events with a wall-clock start, and ``pid``/``tid`` lanes.  Our JSONL
streams carry everything needed: spans record ``start_ts`` (epoch
seconds) and ``dur_s``, every stream opens with a ``meta`` line naming
its ``pid``, and trace-context propagation stamps each line with the
``trace`` id of the request that produced it.

:func:`chrome_trace` therefore merges *many* streams -- the parent
process plus the per-worker files a ``trace_dir`` fan-out writes -- into
one timeline: each stream contributes a lane keyed by its meta ``pid``,
and an optional ``trace_id`` filter keeps only the lines of a single
request, which is how one service job is followed across worker
processes.  Ad-hoc events become instant (``"i"``) marks and final
counter values become counter (``"C"``) samples, so cache hits and
scheduler decisions land on the same timeline as the solver spans.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.events import read_jsonl

#: ``displayTimeUnit`` written into the exported document.
DISPLAY_TIME_UNIT = "ms"


def _micros(seconds: Any) -> float:
    return float(seconds) * 1e6


def _keep(record: Dict[str, Any], trace_id: Optional[str]) -> bool:
    return trace_id is None or record.get("trace") == trace_id


def stream_events(
    stream: Iterable[Dict[str, Any]],
    trace_id: Optional[str] = None,
    default_pid: int = 0,
) -> List[Dict[str, Any]]:
    """Chrome trace events for one JSONL stream.

    The stream's most recent ``meta`` line supplies the ``pid`` lane
    (append-mode worker files may contain several metas; they all name
    the same process).  ``trace_id`` keeps only matching lines.
    """
    pid = default_pid
    out: List[Dict[str, Any]] = []
    for record in stream:
        kind = record.get("kind")
        if kind == "meta":
            pid = int(record.get("pid", pid))
            continue
        if not _keep(record, trace_id):
            continue
        name = str(record.get("name", "?"))
        args = {k: v for k, v in record.items() if k in ("trace", "attrs", "fields")}
        if kind == "span":
            start = record.get("start_ts", record.get("ts", 0.0))
            out.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": _micros(start),
                    "dur": _micros(record.get("dur_s", 0.0)),
                    "pid": pid,
                    "tid": pid,
                    "args": args,
                }
            )
        elif kind == "event":
            out.append(
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "ts": _micros(record.get("ts", 0.0)),
                    "pid": pid,
                    "tid": pid,
                    "args": args,
                }
            )
        elif kind in ("counter", "gauge"):
            out.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": _micros(record.get("ts", 0.0)),
                    "pid": pid,
                    "tid": pid,
                    "args": {"value": record.get("value", 0)},
                }
            )
    return out


def chrome_trace(
    streams: Sequence[Iterable[Dict[str, Any]]],
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Merge event streams into one Chrome trace-event document.

    Streams are merged on time; each keeps its own ``pid`` lane, and
    process-name metadata rows label the lanes in the viewer.
    """
    events: List[Dict[str, Any]] = []
    pids: List[int] = []
    for n, stream in enumerate(streams):
        converted = stream_events(stream, trace_id=trace_id, default_pid=n)
        events.extend(converted)
        for ev in converted:
            if ev["pid"] not in pids:
                pids.append(ev["pid"])
    events.sort(key=lambda ev: (ev["ts"], ev["pid"]))
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": pid,
            "args": {"name": f"repro pid {pid}"},
        }
        for pid in sorted(pids)
    ]
    doc: Dict[str, Any] = {
        "traceEvents": metadata + events,
        "displayTimeUnit": DISPLAY_TIME_UNIT,
    }
    if trace_id is not None:
        doc["otherData"] = {"trace_id": trace_id}
    return doc


def export_chrome_trace(
    paths: Sequence[str],
    out_path: str,
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Read JSONL stream files, write merged Chrome trace JSON.

    Returns a small summary (streams read, events written, span count)
    for CLI reporting.  Torn tail lines in worker files are skipped the
    same way the ledger reads its history.
    """
    streams = [read_jsonl(path, skip_invalid=True) for path in paths]
    doc = chrome_trace(streams, trace_id=trace_id)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")
    events = doc["traceEvents"]
    return {
        "streams": len(streams),
        "events": len(events),
        "spans": sum(1 for ev in events if ev.get("ph") == "X"),
        "out": out_path,
    }


__all__ = ["chrome_trace", "export_chrome_trace", "stream_events"]
