"""Binary adjacency vectors and the paper's three vector operations.

Section II defines exactly three operations on adjacency vectors:

* **Complementation** -- e.g. ``not([1,1,0]) = [0,0,1]``;
* **Logical AND** -- elementwise product;
* **Norm** -- the number of ones, ``|[0,1,1]| = 2``.

Vectors are plain tuples of 0/1 ints, which keeps them hashable and cheap;
this module adds validation and the named operations so the gain formulas in
:mod:`repro.replication.gains` read like the paper's equations.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

#: A binary (0/1) vector.
BinaryVector = Tuple[int, ...]


def vector(bits: Iterable[int]) -> BinaryVector:
    """Build a validated binary vector from an iterable of 0/1 values."""
    result = tuple(int(b) for b in bits)
    for b in result:
        if b not in (0, 1):
            raise ValueError(f"binary vector element {b!r} is not 0/1")
    return result


def _check_same_length(*vectors: Sequence[int]) -> None:
    lengths = {len(v) for v in vectors}
    if len(lengths) > 1:
        raise ValueError(f"vector length mismatch: {sorted(lengths)}")


def vnot(v: Sequence[int]) -> BinaryVector:
    """Complementation: flip every bit."""
    return tuple(1 - b for b in v)


def vand(*vectors: Sequence[int]) -> BinaryVector:
    """Logical AND of one or more equal-length vectors."""
    if not vectors:
        raise ValueError("vand needs at least one vector")
    _check_same_length(*vectors)
    result = tuple(vectors[0])
    for v in vectors[1:]:
        result = tuple(a & b for a, b in zip(result, v))
    return result


def vor(*vectors: Sequence[int]) -> BinaryVector:
    """Logical OR (used to aggregate supports across outputs)."""
    if not vectors:
        raise ValueError("vor needs at least one vector")
    _check_same_length(*vectors)
    result = tuple(vectors[0])
    for v in vectors[1:]:
        result = tuple(a | b for a, b in zip(result, v))
    return result


def norm(v: Sequence[int]) -> int:
    """Norm: the number of ones."""
    return sum(v)
