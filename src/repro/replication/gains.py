"""The unified gain model for moves and replications (paper Section III).

All three move types are scored from the same small set of binary vectors
associated with the cell under consideration (n inputs, m outputs):

* ``a[i]`` -- I/O adjacency vector A_Xi of output i (length n);
* ``ci`` / ``co`` -- cutset adjacency vectors C^I (length n) and C^O
  (length m): bit set iff the net on that pin is currently in the cut;
* ``qi`` / ``qo`` -- critical-net vectors Q^I and Q^O: bit set iff one move
  of that pin across the cut line changes the net's cut state.

For a *cut* net the pin is critical iff it is the only pin of the net on the
cell's side (moving it un-cuts the net).  For a *nocut* net the pin is
critical iff the net has at least one other pin (moving the pin then always
cuts the net, because every net keeps its driver and the net was entirely on
the cell's side).

Equations implemented:

* eq. (7)  -- :func:`gain_single_move`;
* eq. (8)  -- :func:`gain_traditional_replication`
  (``G_tr = (|C^I| + |C^O|) - n``);
* eqs. (9)/(10) -- :func:`gain_functional_output`: the gain of a functional
  replication in which the replica takes output ``i`` across the cut (with
  exactly the inputs supporting it) while the original keeps the remaining
  outputs and floats output ``i`` plus the inputs exclusive to it.  The
  paper prints the two-output instance; this is the general-m form, and the
  engine's ground-truth delta-cut agrees with it (property-tested);
* eq. (11) -- :func:`gain_functional_replication` = max_i of the above.

The worked example of Figure 4 (the paper's 5-input/2-output cell of
Figure 2 with A_X1 = 11110, A_X2 = 00011, C^I = 00011, C^O = 01) evaluates
to G_m = -1, G_tr = -2, G_X1 = -4, G_X2 = +2, G_r = +2, exactly the numbers
in the paper; see ``tests/test_paper_figures.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.replication.adjacency import (
    BinaryVector,
    norm,
    vand,
    vnot,
    vector,
)


@dataclass(frozen=True)
class MoveVectors:
    """The vector bundle the unified cost model consumes for one cell."""

    a: Tuple[BinaryVector, ...]  # adjacency vector per output
    ci: BinaryVector  # cutset adjacency, inputs
    qi: BinaryVector  # criticality, inputs
    co: BinaryVector  # cutset adjacency, outputs
    qo: BinaryVector  # criticality, outputs

    def __post_init__(self) -> None:
        n = len(self.ci)
        m = len(self.co)
        if len(self.qi) != n:
            raise ValueError("C^I and Q^I length mismatch")
        if len(self.qo) != m:
            raise ValueError("C^O and Q^O length mismatch")
        if len(self.a) != m:
            raise ValueError("one adjacency vector per output required")
        for a_vec in self.a:
            if len(a_vec) != n:
                raise ValueError("adjacency vector length must equal input count")

    @property
    def n_inputs(self) -> int:
        return len(self.ci)

    @property
    def n_outputs(self) -> int:
        return len(self.co)


def make_move_vectors(
    a: Sequence[Sequence[int]],
    ci: Sequence[int],
    qi: Sequence[int],
    co: Sequence[int],
    qo: Sequence[int],
) -> MoveVectors:
    """Convenience constructor validating plain sequences into vectors."""
    return MoveVectors(
        a=tuple(vector(v) for v in a),
        ci=vector(ci),
        qi=vector(qi),
        co=vector(co),
        qo=vector(qo),
    )


def gain_single_move(mv: MoveVectors) -> int:
    """Eq. (7): gain of moving the whole cell across the cut line.

    ``G_m = (|C^I & Q^I| + |C^O & Q^O|) - (|~C^I & Q^I| + |~C^O & Q^O|)``
    """
    removed = norm(vand(mv.ci, mv.qi)) + norm(vand(mv.co, mv.qo))
    added = norm(vand(vnot(mv.ci), mv.qi)) + norm(vand(vnot(mv.co), mv.qo))
    return removed - added


def gain_traditional_replication(mv: MoveVectors) -> int:
    """Eq. (8): gain of traditional (whole-cell, split-output) replication.

    ``G_tr = (|C^I| + |C^O|) - n`` where n is the number of cell inputs:
    every cut output net is served locally on both sides after the split
    (removed from the cut), while every nocut input net acquires a far-side
    pin (added to the cut).
    """
    return (norm(mv.ci) + norm(mv.co)) - mv.n_inputs


def _exclusive_mask(mv: MoveVectors, output_index: int) -> BinaryVector:
    """Inputs supporting only ``output_index`` (the and-of-complements of eq. 4)."""
    others = [
        vnot(mv.a[j]) for j in range(mv.n_outputs) if j != output_index
    ]
    if not others:
        return mv.a[output_index]
    return vand(mv.a[output_index], *others)


def gain_functional_output(mv: MoveVectors, output_index: int) -> int:
    """Eqs. (9)/(10): gain of functionally replicating output ``output_index``.

    The replica takes output i and the inputs in A_Xi across the cut; the
    original floats output i and the inputs exclusive to it.  Gains:

    * exclusive inputs behave like moved pins: cut-and-critical ones leave
      the cut, nocut-and-critical ones enter it;
    * shared inputs stay on the original and gain a far-side replica pin:
      nocut ones always enter the cut (the original's pin stays behind),
      cut ones stay cut;
    * the output pin behaves like a moved pin: ``c q`` removes it from the
      cut, ``(1-c) q`` adds it.
    """
    if not 0 <= output_index < mv.n_outputs:
        raise IndexError("output index out of range")
    excl = _exclusive_mask(mv, output_index)
    shared = vand(mv.a[output_index], vnot(excl))
    removed = norm(vand(mv.ci, mv.qi, excl)) + mv.co[output_index] * mv.qo[output_index]
    added = (
        norm(vand(vnot(mv.ci), mv.qi, excl))
        + norm(vand(vnot(mv.ci), shared))
        + (1 - mv.co[output_index]) * mv.qo[output_index]
    )
    return removed - added


def gain_functional_replication(mv: MoveVectors) -> Tuple[int, int]:
    """Eq. (11): the best functional replication, ``(gain, output_index)``.

    Only defined for multi-output cells (functional replication needs at
    least two outputs to split).
    """
    if mv.n_outputs < 2:
        raise ValueError("functional replication requires >= 2 outputs")
    best_gain = None
    best_output = 0
    for i in range(mv.n_outputs):
        g = gain_functional_output(mv, i)
        if best_gain is None or g > best_gain:
            best_gain = g
            best_output = i
    assert best_gain is not None
    return best_gain, best_output
