"""Replication potential psi, cell distributions and the threshold T.

Equation (4) of the paper: for a cell with m outputs and adjacency vectors
A_X1..A_Xm, the replication potential is::

    psi = sum_i | and_{j != i} not(A_Xj) AND A_Xi |     if m > 1
    psi = 0                                             if m == 1

i.e. the number of inputs that control exactly one output.  Equation (5)
defines the cell distribution d_X(psi) over all cells (Figure 3 plots it),
and equation (6) the maximum cell replication factor r_T = sum_{psi >= T}
d_X(psi): only cells with psi >= T are replication candidates; T = 0 allows
every multi-output cell and T = infinity disables replication.

Figure 3 distinguishes single-output cells (psi = 0 by definition) from
multi-output cells that happen to have psi = 0 (all inputs shared); the
distribution report keeps the two apart the same way.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.replication.adjacency import norm, vand, vnot

#: Threshold value meaning "replication disabled" (eq. 6's T = infinity).
T_INFINITY = float("inf")


def replication_potential(adjacency_vectors: Sequence[Sequence[int]]) -> int:
    """Evaluate eq. (4) on a cell's per-output adjacency vectors."""
    m = len(adjacency_vectors)
    if m == 0:
        raise ValueError("cell must have at least one output")
    if m == 1:
        return 0
    total = 0
    for i, a_i in enumerate(adjacency_vectors):
        others = [vnot(a_j) for j, a_j in enumerate(adjacency_vectors) if j != i]
        total += norm(vand(a_i, *others))
    return total


def node_potential(node) -> int:
    """Replication potential of a hypergraph cell node (0 for terminals)."""
    if not getattr(node, "is_cell", False):
        return 0
    vectors = [node.adjacency_vector(i) for i in range(node.n_outputs)]
    return replication_potential(vectors)


@dataclass
class PotentialDistribution:
    """The d_X(psi) distribution of one circuit (a Figure 3 column).

    ``single_output_zero`` counts cells with one output (psi = 0 by
    definition); ``multi_output_zero`` counts multi-output cells whose psi is
    0 (the starred category of Figure 3); ``by_potential`` histograms
    multi-output cells with psi >= 1.
    """

    name: str
    n_cells: int
    single_output_zero: int
    multi_output_zero: int
    by_potential: Dict[int, int] = field(default_factory=dict)

    def fraction(self, count: int) -> float:
        return count / self.n_cells if self.n_cells else 0.0

    def cells_with_potential_at_least(self, threshold: Union[int, float]) -> int:
        """Eq. (6): r_T, the maximum cell replication factor.

        ``threshold=0`` includes multi-output psi = 0 cells (the paper's
        "T = 0 includes multi-output cells with psi = 0" note) but never
        single-output cells, which functional replication cannot split.
        """
        if threshold == T_INFINITY:
            return 0
        count = sum(c for psi, c in self.by_potential.items() if psi >= threshold)
        if threshold <= 0:
            count += self.multi_output_zero
        return count

    def rows(self) -> List[Tuple[str, int, float]]:
        """(label, count, fraction) rows for reports, Figure 3 ordering."""
        out: List[Tuple[str, int, float]] = [
            ("psi=0 (1-out)", self.single_output_zero, self.fraction(self.single_output_zero)),
            ("psi=0* (m-out)", self.multi_output_zero, self.fraction(self.multi_output_zero)),
        ]
        for psi in sorted(self.by_potential):
            count = self.by_potential[psi]
            out.append((f"psi={psi}", count, self.fraction(count)))
        return out


def cell_distribution(hg, name: str = "") -> PotentialDistribution:
    """Compute d_X(psi) (eq. 5) over the cells of a hypergraph."""
    single_zero = 0
    multi_zero = 0
    histogram: Counter = Counter()
    n_cells = 0
    for node in hg.nodes:
        if not node.is_cell:
            continue
        n_cells += 1
        if node.n_outputs == 1:
            single_zero += 1
            continue
        psi = node_potential(node)
        if psi == 0:
            multi_zero += 1
        else:
            histogram[psi] += 1
    return PotentialDistribution(
        name=name or hg.name,
        n_cells=n_cells,
        single_output_zero=single_zero,
        multi_output_zero=multi_zero,
        by_potential=dict(histogram),
    )


def max_replication_factor(
    distribution: PotentialDistribution, threshold: Union[int, float]
) -> int:
    """Eq. (6): r_T for a given threshold replication potential T."""
    return distribution.cells_with_potential_at_least(threshold)
