"""Functional replication cost model (paper Sections II and III).

* :mod:`repro.replication.adjacency` -- binary vectors and the three paper
  operations (complementation, logical AND, norm).
* :mod:`repro.replication.potential` -- replication potential psi (eq. 4),
  the cell distribution d_X(psi) (eq. 5, Figure 3) and the maximum cell
  replication factor r_T (eq. 6).
* :mod:`repro.replication.gains` -- the unified gain model: single move
  (eq. 7), traditional replication (eq. 8) and functional replication
  (eqs. 9-11), plus extraction of the C/Q vectors from a partition state.
"""

from repro.replication.adjacency import BinaryVector, vand, vnot, norm
from repro.replication.potential import (
    replication_potential,
    cell_distribution,
    max_replication_factor,
    PotentialDistribution,
)
from repro.replication.gains import (
    gain_single_move,
    gain_traditional_replication,
    gain_functional_output,
    gain_functional_replication,
    MoveVectors,
)

__all__ = [
    "BinaryVector",
    "vand",
    "vnot",
    "norm",
    "replication_potential",
    "cell_distribution",
    "max_replication_factor",
    "PotentialDistribution",
    "gain_single_move",
    "gain_traditional_replication",
    "gain_functional_output",
    "gain_functional_replication",
    "MoveVectors",
]
