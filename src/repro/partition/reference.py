"""Reference (pre-optimization) partitioning engines, preserved verbatim.

These are the lazy-heap, full-gain-recompute implementations of
:mod:`repro.partition.fm` and :mod:`repro.partition.fm_replication` as they
existed before the fast CSR/delta-gain core landed.  They are kept for two
jobs:

* **behavioral spec** -- the optimized engines must return *bit-identical*
  assignments for every (hypergraph, config) pair; the equivalence tests in
  ``tests/test_fm_equivalence.py`` and the golden files under
  ``tests/golden/`` enforce this against these implementations;
* **performance baseline** -- ``benchmarks/bench_fm_hot.py`` times these
  engines against the optimized ones *in the same process on the same
  machine*, which makes the recorded speedup ratio meaningful across
  heterogeneous CI hardware.

Do not modify the algorithm bodies here; any intended behavior change must
land in the optimized engines first, then be re-captured by regenerating the
golden files (see ``docs/PERFORMANCE.md``).

The fault-injection hooks are intentionally absent: reference runs never
fire ``fm.run`` / ``engine.run`` fault sites, so fault-plan tests keep
deterministic fire counts no matter how often the reference path runs.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.fm import FMConfig, FMResult, _BUDGET_POLL_MOVES
from repro.partition.fm_replication import (
    FUNCTIONAL,
    NONE,
    TRADITIONAL,
    ReplicationConfig,
    ReplicationResult,
)
from repro.replication.gains import MoveVectors
from repro.replication.potential import node_potential

class ReferenceFMState:
    """Mutable run state shared by the pass loop."""

    def __init__(self, hg: Hypergraph, config: FMConfig, initial: Optional[Sequence[int]]):
        self.hg = hg
        self.config = config
        rng = random.Random(config.seed)
        n_nodes = len(hg.nodes)

        # (net, pin count) pairs per node, distinct nets.
        self.node_net_pins: List[List[Tuple[int, int]]] = []
        for node in hg.nodes:
            counts: Dict[int, int] = {}
            for net in node.input_nets:
                counts[net] = counts.get(net, 0) + 1
            for net in node.output_nets:
                counts[net] = counts.get(net, 0) + 1
            self.node_net_pins.append(list(counts.items()))

        # Critical window per net: the largest per-node pin count.
        self.net_maxk: List[int] = [0] * len(hg.nets)
        self.net_nodes: List[List[int]] = [[] for _ in hg.nets]
        for node_idx, pairs in enumerate(self.node_net_pins):
            for net, k in pairs:
                self.net_nodes[net].append(node_idx)
                if k > self.net_maxk[net]:
                    self.net_maxk[net] = k

        self.side: List[int] = self._initial_sides(rng, initial)
        self.counts: List[List[int]] = [[0, 0] for _ in hg.nets]
        for node_idx, pairs in enumerate(self.node_net_pins):
            s = self.side[node_idx]
            for net, k in pairs:
                self.counts[net][s] += k

        self.weights = [node.clb_weight for node in hg.nodes]
        self.sizes = [0, 0]
        for node_idx, w in enumerate(self.weights):
            self.sizes[self.side[node_idx]] += w

        self.total_weight = sum(self.weights)
        if config.side0_bounds is not None:
            self.lo0, self.hi0 = config.side0_bounds
        else:
            slack = max(1, int(config.balance_tolerance * self.total_weight))
            half = self.total_weight / 2.0
            self.lo0 = max(0, int(half) - slack)
            self.hi0 = min(self.total_weight, int(half + 0.5) + slack)

        self.locked = [False] * n_nodes
        self.fixed_set = set(config.fixed)
        self.movable = [i for i in range(n_nodes) if i not in self.fixed_set]
        self.stamp = [0] * n_nodes
        self._push_counter = 0

    def _initial_sides(
        self, rng: random.Random, initial: Optional[Sequence[int]]
    ) -> List[int]:
        hg, config = self.hg, self.config
        if initial is not None:
            sides = list(initial)
            if len(sides) != len(hg.nodes):
                raise ValueError("initial assignment length mismatch")
        else:
            order = list(range(len(hg.nodes)))
            rng.shuffle(order)
            total = sum(node.clb_weight for node in hg.nodes)
            if config.side0_bounds is not None:
                target0 = (config.side0_bounds[0] + config.side0_bounds[1]) / 2.0
            else:
                target0 = total / 2.0
            sides = [1] * len(hg.nodes)
            acc = 0
            for idx in order:
                w = hg.nodes[idx].clb_weight
                if w == 0:
                    sides[idx] = rng.randrange(2)
                elif acc + w <= target0:
                    sides[idx] = 0
                    acc += w
        for node_idx, fixed_side in config.fixed.items():
            sides[node_idx] = fixed_side
        return sides

    # ------------------------------------------------------------------
    def gain(self, node_idx: int) -> int:
        """Exact cut delta of moving ``node_idx`` to the other side."""
        s = self.side[node_idx]
        total = 0
        for net, k in self.node_net_pins[node_idx]:
            f = self.counts[net][s]
            t = self.counts[net][1 - s]
            if t == 0:
                if f > k:
                    total -= 1
            elif f == k:
                total += 1
        return total

    def cut_size(self) -> int:
        return sum(1 for c in self.counts if c[0] > 0 and c[1] > 0)

    def admissible(self, node_idx: int) -> bool:
        w = self.weights[node_idx]
        if w == 0:
            return True
        if self.side[node_idx] == 0:
            new0 = self.sizes[0] - w
        else:
            new0 = self.sizes[0] + w
        return self.lo0 <= new0 <= self.hi0

    def apply(self, node_idx: int) -> None:
        s = self.side[node_idx]
        for net, k in self.node_net_pins[node_idx]:
            self.counts[net][s] -= k
            self.counts[net][1 - s] += k
        self.side[node_idx] = 1 - s
        w = self.weights[node_idx]
        self.sizes[s] -= w
        self.sizes[1 - s] += w


def reference_fm_bipartition(
    hg: Hypergraph,
    config: Optional[FMConfig] = None,
    initial: Optional[Sequence[int]] = None,
) -> FMResult:
    """Reference FM run (pre-optimization behavior)."""
    config = config or FMConfig()
    state = ReferenceFMState(hg, config, initial)
    initial_cut = state.cut_size()
    pass_gains: List[int] = []

    for _ in range(config.max_passes):
        if config.budget is not None and config.budget.expired:
            break
        gain_of_pass = _reference_run_pass(state)
        pass_gains.append(gain_of_pass)
        if gain_of_pass <= 0:
            break

    return FMResult(
        assignment=list(state.side),
        cut_size=state.cut_size(),
        initial_cut=initial_cut,
        passes=len(pass_gains),
        pass_gains=pass_gains,
    )


def _reference_run_pass(state: ReferenceFMState) -> int:
    """One FM pass; returns the gain of the accepted prefix."""
    for idx in range(len(state.locked)):
        # Fixed nodes stay locked so neighbour refreshes cannot requeue them.
        state.locked[idx] = idx in state.fixed_set
    heaps: List[List[Tuple[int, int, int, int]]] = [[], []]

    def push(node_idx: int) -> None:
        state.stamp[node_idx] += 1
        state._push_counter += 1
        heapq.heappush(
            heaps[state.side[node_idx]],
            (-state.gain(node_idx), state._push_counter, node_idx, state.stamp[node_idx]),
        )

    for node_idx in state.movable:
        push(node_idx)

    moves: List[int] = []
    cumulative = 0
    best_gain = 0
    best_index = 0
    deferred: List[Tuple[int, Tuple[int, int, int, int]]] = []

    while True:
        # Pick the best valid, admissible entry across both heaps.
        chosen = -1
        while chosen < 0:
            best_side = -1
            for s in (0, 1):
                heap = heaps[s]
                while heap:
                    neg_gain, _, node_idx, stamp = heap[0]
                    if (
                        state.locked[node_idx]
                        or stamp != state.stamp[node_idx]
                        or state.side[node_idx] != s
                    ):
                        heapq.heappop(heap)
                        continue
                    break
                if not heap:
                    continue
                if best_side < 0 or heap[0][0] < heaps[best_side][0][0]:
                    best_side = s
            if best_side < 0:
                chosen = -2
                break
            entry = heapq.heappop(heaps[best_side])
            node_idx = entry[2]
            if state.admissible(node_idx):
                chosen = node_idx
            else:
                deferred.append((best_side, entry))
        if chosen == -2:
            break

        gain = state.gain(chosen)
        state.apply(chosen)
        state.locked[chosen] = True
        moves.append(chosen)
        cumulative += gain
        if cumulative > best_gain:
            best_gain = cumulative
            best_index = len(moves)

        budget = state.config.budget
        if (
            budget is not None
            and len(moves) % _BUDGET_POLL_MOVES == 0
            and budget.expired
        ):
            break  # rollback below still lands on the best prefix

        # Inadmissible entries may have become admissible: restore them.
        for s, entry in deferred:
            node_idx = entry[2]
            if not state.locked[node_idx] and entry[3] == state.stamp[node_idx]:
                heapq.heappush(heaps[s], entry)
        deferred.clear()

        # Refresh gains of neighbours on nets whose critical window moved.
        new_side = state.side[chosen]
        for net, k in state.node_net_pins[chosen]:
            f_after = state.counts[net][new_side]
            t_after = state.counts[net][1 - new_side]
            f_before = f_after - k
            t_before = t_after + k
            window = state.net_maxk[net]
            if (
                min(f_before, t_before) > window
                and min(f_after, t_after) > window
            ):
                continue
            for other in state.net_nodes[net]:
                if other != chosen and not state.locked[other]:
                    push(other)

    # Roll back to the best prefix.
    for node_idx in reversed(moves[best_index:]):
        state.apply(node_idx)
    return best_gain



class ReferenceReplicationEngine:
    """The mutable partition state and move machinery.

    Exposed as a class (rather than only the :func:`replication_bipartition`
    driver) so tests and the k-way carver can drive and inspect it directly.
    """

    def __init__(
        self,
        hg: Hypergraph,
        config: Optional[ReplicationConfig] = None,
        initial: Optional[Sequence[int]] = None,
    ) -> None:
        self.hg = hg
        self.config = config or ReplicationConfig()
        self.rng = random.Random(self.config.seed)
        n_nodes = len(hg.nodes)
        n_nets = len(hg.nets)

        # --- static per-node pin tables -------------------------------
        # all_pins[v]: list[(net, count)] of the full cell.
        # orig_pins[v][o] / repl_pins[v][o]: the two instances' pin tables
        # when output o is taken by the replica (functional style).
        self.all_pins: List[List[Tuple[int, int]]] = []
        self.orig_pins: List[List[List[Tuple[int, int]]]] = []
        self.repl_pins: List[List[List[Tuple[int, int]]]] = []
        self.potentials: List[int] = []
        for node in hg.nodes:
            full: Dict[int, int] = {}
            for net in node.input_nets:
                full[net] = full.get(net, 0) + 1
            for net in node.output_nets:
                full[net] = full.get(net, 0) + 1
            self.all_pins.append(list(full.items()))
            per_output_orig: List[List[Tuple[int, int]]] = []
            per_output_repl: List[List[Tuple[int, int]]] = []
            if node.is_cell and node.n_outputs >= 2:
                for o in range(node.n_outputs):
                    kept_inputs: set = set()
                    for j, sup in enumerate(node.supports):
                        if j != o:
                            kept_inputs.update(sup)
                    orig: Dict[int, int] = {}
                    for pin in kept_inputs:
                        net = node.input_nets[pin]
                        orig[net] = orig.get(net, 0) + 1
                    for j, net in enumerate(node.output_nets):
                        if j != o:
                            orig[net] = orig.get(net, 0) + 1
                    repl: Dict[int, int] = {}
                    for pin in node.supports[o]:
                        net = node.input_nets[pin]
                        repl[net] = repl.get(net, 0) + 1
                    out_net = node.output_nets[o]
                    repl[out_net] = repl.get(out_net, 0) + 1
                    per_output_orig.append(list(orig.items()))
                    per_output_repl.append(list(repl.items()))
            self.orig_pins.append(per_output_orig)
            self.repl_pins.append(per_output_repl)
            self.potentials.append(node_potential(node) if node.is_cell else 0)

        self.net_nodes: List[List[int]] = [[] for _ in range(n_nets)]
        self.net_maxk: List[int] = [0] * n_nets
        for v, pairs in enumerate(self.all_pins):
            for net, k in pairs:
                self.net_nodes[net].append(v)
                if k > self.net_maxk[net]:
                    self.net_maxk[net] = k

        # --- dynamic state --------------------------------------------
        self.side: List[int] = self._initial_sides(initial)
        # rep[v] = (orig side, far output) or None.
        self.rep: List[Optional[Tuple[int, int]]] = [None] * n_nodes
        self.counts: List[List[int]] = [[0, 0] for _ in range(n_nets)]
        self.split: List[int] = [0] * n_nets  # traditional-replication splits
        for v in range(n_nodes):
            s = self.side[v]
            for net, k in self.all_pins[v]:
                self.counts[net][s] += k

        self.weights = [node.clb_weight for node in hg.nodes]
        self.sizes = [0, 0]
        for v, w in enumerate(self.weights):
            self.sizes[self.side[v]] += w
        self.total_weight = sum(self.weights)
        if self.config.side0_bounds is not None:
            self.lo0, self.hi0 = self.config.side0_bounds
            self.max_imbalance = None
        else:
            slack = max(1, int(self.config.balance_tolerance * self.total_weight))
            self.max_imbalance = 2 * slack
            self.lo0 = self.hi0 = None
        if self.config.max_growth is None:
            self.instance_cap = None
        else:
            self.instance_cap = int(
                (1.0 + self.config.max_growth) * self.total_weight
            )

        self.locked = [False] * n_nodes
        self.fixed_set = set(self.config.fixed)
        self.movable = [v for v in range(n_nodes) if v not in self.fixed_set]
        self.stamp = [0] * n_nodes
        self._push_counter = 0
        self._moves_only = False

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _initial_sides(self, initial: Optional[Sequence[int]]) -> List[int]:
        hg, config = self.hg, self.config
        if initial is not None:
            sides = list(initial)
            if len(sides) != len(hg.nodes):
                raise ValueError("initial assignment length mismatch")
        else:
            order = list(range(len(hg.nodes)))
            self.rng.shuffle(order)
            total = sum(node.clb_weight for node in hg.nodes)
            if config.side0_bounds is not None:
                target0 = (config.side0_bounds[0] + config.side0_bounds[1]) / 2.0
            else:
                target0 = total / 2.0
            sides = [1] * len(hg.nodes)
            acc = 0
            for idx in order:
                w = hg.nodes[idx].clb_weight
                if w == 0:
                    sides[idx] = self.rng.randrange(2)
                elif acc + w <= target0:
                    sides[idx] = 0
                    acc += w
        for node_idx, fixed_side in config.fixed.items():
            sides[node_idx] = fixed_side
        return sides

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    def cut_size(self) -> int:
        return sum(
            1
            for net in range(len(self.counts))
            if self.split[net] == 0
            and self.counts[net][0] > 0
            and self.counts[net][1] > 0
        )

    def is_cut(self, net: int) -> bool:
        return (
            self.split[net] == 0
            and self.counts[net][0] > 0
            and self.counts[net][1] > 0
        )

    def replicas(self) -> Dict[int, Tuple[int, int]]:
        return {v: r for v, r in enumerate(self.rep) if r is not None}

    def active_pins(self, v: int) -> List[Tuple[int, int, int]]:
        """Current active pins of node ``v`` as ``(net, side, count)``."""
        r = self.rep[v]
        if r is None:
            s = self.side[v]
            return [(net, s, k) for net, k in self.all_pins[v]]
        s, o = r
        if o < 0:  # traditional: full copies on both sides
            return [(net, s, k) for net, k in self.all_pins[v]] + [
                (net, 1 - s, k) for net, k in self.all_pins[v]
            ]
        return [(net, s, k) for net, k in self.orig_pins[v][o]] + [
            (net, 1 - s, k) for net, k in self.repl_pins[v][o]
        ]

    # ------------------------------------------------------------------
    # Move mechanics
    # ------------------------------------------------------------------
    def _state_pins(
        self, v: int, side: int, rep: Optional[Tuple[int, int]]
    ) -> List[Tuple[int, int, int]]:
        if rep is None:
            return [(net, side, k) for net, k in self.all_pins[v]]
        s, o = rep
        if o < 0:
            return [(net, s, k) for net, k in self.all_pins[v]] + [
                (net, 1 - s, k) for net, k in self.all_pins[v]
            ]
        return [(net, s, k) for net, k in self.orig_pins[v][o]] + [
            (net, 1 - s, k) for net, k in self.repl_pins[v][o]
        ]

    def _state_weight(self, v: int, rep: Optional[Tuple[int, int]]) -> Tuple[int, int]:
        """(side0 CLBs, side1 CLBs) of node ``v`` in the given state."""
        w = self.weights[v]
        if rep is None:
            return (w, 0) if self.side[v] == 0 else (0, w)
        return (w, w)

    def _net_delta(
        self,
        v: int,
        new_side: int,
        new_rep: Optional[Tuple[int, int]],
    ) -> Dict[int, List[int]]:
        """Per-net pin deltas [d_side0, d_side1, d_split] of a state change."""
        deltas: Dict[int, List[int]] = {}
        for net, s, k in self.active_pins(v):
            d = deltas.setdefault(net, [0, 0, 0])
            d[s] -= k
        cur = self.rep[v]
        if cur is not None and cur[1] < 0:
            for net in self.hg.nodes[v].output_nets:
                deltas.setdefault(net, [0, 0, 0])[2] -= 1
        for net, s, k in self._state_pins(v, new_side, new_rep):
            d = deltas.setdefault(net, [0, 0, 0])
            d[s] += k
        if new_rep is not None and new_rep[1] < 0:
            for net in self.hg.nodes[v].output_nets:
                deltas.setdefault(net, [0, 0, 0])[2] += 1
        return deltas

    def move_gain(self, v: int, new_side: int, new_rep: Optional[Tuple[int, int]]) -> int:
        """Exact cut delta (positive = improvement) of a state change."""
        gain = 0
        for net, (d0, d1, dsplit) in self._net_delta(v, new_side, new_rep).items():
            c0, c1 = self.counts[net]
            before = self.split[net] == 0 and c0 > 0 and c1 > 0
            after = (
                self.split[net] + dsplit == 0
                and c0 + d0 > 0
                and c1 + d1 > 0
            )
            gain += int(before) - int(after)
        return gain

    def set_state(
        self, v: int, new_side: int, new_rep: Optional[Tuple[int, int]]
    ) -> List[int]:
        """Commit a state change; returns the affected net indices."""
        deltas = self._net_delta(v, new_side, new_rep)
        for net, (d0, d1, dsplit) in deltas.items():
            self.counts[net][0] += d0
            self.counts[net][1] += d1
            self.split[net] += dsplit
        old_w = self._state_weight(v, self.rep[v])
        self.side[v] = new_side
        self.rep[v] = new_rep
        new_w = self._state_weight(v, new_rep)
        self.sizes[0] += new_w[0] - old_w[0]
        self.sizes[1] += new_w[1] - old_w[1]
        return list(deltas)

    # ------------------------------------------------------------------
    # Candidate moves
    # ------------------------------------------------------------------
    def _balance_ok(self, v: int, new_rep: Optional[Tuple[int, int]], new_side: int) -> bool:
        old_w = self._state_weight(v, self.rep[v])
        w = self.weights[v]
        if new_rep is None:
            new_w = (w, 0) if new_side == 0 else (0, w)
        else:
            new_w = (w, w)
        s0 = self.sizes[0] + new_w[0] - old_w[0]
        s1 = self.sizes[1] + new_w[1] - old_w[1]
        if self.instance_cap is not None and s0 + s1 > self.instance_cap:
            return False
        if self.lo0 is not None:
            return self.lo0 <= s0 <= self.hi0 and s1 >= 0
        assert self.max_imbalance is not None
        if w == 0:
            return True
        return abs(s0 - s1) <= self.max_imbalance

    def candidate_moves(self, v: int) -> List[Tuple[int, int, Optional[Tuple[int, int]]]]:
        """Legal moves for node ``v`` as ``(gain, new_side, new_rep)``.

        Balance admissibility is *not* filtered here; the pass loop defers
        balance-blocked moves and retries them as sizes change, like the
        classic FM bucket scan.
        """
        node = self.hg.nodes[v]
        moves: List[Tuple[int, int, Optional[Tuple[int, int]]]] = []
        r = self.rep[v]
        if r is None:
            s = self.side[v]
            moves.append((self.move_gain(v, 1 - s, None), 1 - s, None))
            if node.is_cell and self.config.style != NONE and not self._moves_only:
                if self.potentials[v] >= self.config.threshold:
                    if self.config.style == FUNCTIONAL and node.n_outputs >= 2:
                        for o in range(node.n_outputs):
                            rep = (s, o)
                            moves.append((self.move_gain(v, s, rep), s, rep))
                    elif self.config.style == TRADITIONAL and (
                        node.n_outputs >= 2
                        or self.config.allow_single_output_traditional
                    ):
                        rep = (s, -1)
                        moves.append((self.move_gain(v, s, rep), s, rep))
        else:
            for t in (0, 1):
                moves.append((self.move_gain(v, t, None), t, None))
        return moves

    def best_move(self, v: int) -> Optional[Tuple[int, int, Optional[Tuple[int, int]]]]:
        moves = self.candidate_moves(v)
        if not moves:
            return None
        return max(moves, key=lambda m: m[0])

    # ------------------------------------------------------------------
    # Paper vector extraction (for the unified-cost-model tests)
    # ------------------------------------------------------------------
    def move_vectors(self, v: int) -> MoveVectors:
        """Extract (A, C^I, Q^I, C^O, Q^O) for a SINGLE cell node.

        Requires one pin per net per cell (the paper's setting); raises
        ``ValueError`` otherwise.
        """
        node = self.hg.nodes[v]
        if self.rep[v] is not None:
            raise ValueError("vectors are defined for unreplicated cells")
        seen: set = set()
        for net in list(node.input_nets) + list(node.output_nets):
            if net in seen:
                raise ValueError("cell touches a net with more than one pin")
            seen.add(net)
        s = self.side[v]

        def pin_vectors(nets: Iterable[int]) -> Tuple[List[int], List[int]]:
            c_vec: List[int] = []
            q_vec: List[int] = []
            for net in nets:
                cut = self.is_cut(net)
                c_vec.append(int(cut))
                if cut:
                    q_vec.append(int(self.counts[net][s] == 1))
                else:
                    q_vec.append(int(self.counts[net][s] > 1))
            return c_vec, q_vec

        ci, qi = pin_vectors(node.input_nets)
        co, qo = pin_vectors(node.output_nets)
        return MoveVectors(
            a=tuple(node.adjacency_vector(o) for o in range(node.n_outputs)),
            ci=tuple(ci),
            qi=tuple(qi),
            co=tuple(co),
            qo=tuple(qo),
        )

    # ------------------------------------------------------------------
    # Pass loop
    # ------------------------------------------------------------------
    def _push(self, heap: List, v: int) -> None:
        best = self.best_move(v)
        if best is None:
            return
        self.stamp[v] += 1
        self._push_counter += 1
        heapq.heappush(
            heap, (-best[0], self._push_counter, v, self.stamp[v], best[1], best[2])
        )

    def run_pass(self) -> int:
        """One FM pass with replication moves; returns the accepted gain."""
        for v in range(len(self.locked)):
            # Fixed nodes stay locked so neighbour refreshes cannot requeue them.
            self.locked[v] = v in self.fixed_set
        heap: List = []
        for v in self.movable:
            self._push(heap, v)

        undo: List[Tuple[int, int, Optional[Tuple[int, int]]]] = []
        deferred: List[Tuple] = []
        cumulative = 0
        best_gain = 0
        best_index = 0

        while heap:
            entry = heapq.heappop(heap)
            neg_gain, _, v, stamp, new_side, new_rep = entry
            if self.locked[v] or stamp != self.stamp[v]:
                continue
            if not self._balance_ok(v, new_rep, new_side):
                # Balance-blocked: park the entry; retried after each move.
                deferred.append(entry)
                continue
            # The stored gain may be stale; verify and refresh if needed.
            gain = self.move_gain(v, new_side, new_rep)
            if gain != -neg_gain:
                self._push(heap, v)
                continue

            undo.append((v, self.side[v], self.rep[v]))
            changed = self.set_state(v, new_side, new_rep)
            self.locked[v] = True
            cumulative += gain
            if cumulative > best_gain:
                best_gain = cumulative
                best_index = len(undo)

            budget = self.config.budget
            if (
                budget is not None
                and len(undo) % _BUDGET_POLL_MOVES == 0
                and budget.expired
            ):
                break  # rollback below still lands on the best prefix

            for parked in deferred:
                pv = parked[2]
                if not self.locked[pv] and parked[3] == self.stamp[pv]:
                    heapq.heappush(heap, parked)
            deferred.clear()

            for net in changed:
                c0, c1 = self.counts[net]
                if min(c0, c1) > self.net_maxk[net] * 2 + 1:
                    continue
                for other in self.net_nodes[net]:
                    if other != v and not self.locked[other]:
                        self._push(heap, other)

        for v, old_side, old_rep in reversed(undo[best_index:]):
            self.set_state(v, old_side, old_rep)
        return best_gain

    def run(self) -> ReplicationResult:
        budget = self.config.budget
        initial_cut = self.cut_size()
        pass_gains: List[int] = []
        replication_on = self.config.style != NONE
        if replication_on and self.config.warm_start_moves_only:
            self._moves_only = True
            for _ in range(self.config.max_passes):
                if budget is not None and budget.expired:
                    break
                gain = self.run_pass()
                pass_gains.append(gain)
                if gain <= 0:
                    break
            self._moves_only = False
        for _ in range(self.config.max_passes):
            if budget is not None and budget.expired:
                break
            gain = self.run_pass()
            pass_gains.append(gain)
            if gain <= 0:
                break
        return ReplicationResult(
            sides=list(self.side),
            replicas=self.replicas(),
            cut_size=self.cut_size(),
            initial_cut=initial_cut,
            passes=len(pass_gains),
            pass_gains=pass_gains,
            n_cells=self.hg.n_cells,
        )


def reference_replication_bipartition(
    hg: Hypergraph,
    config: Optional[ReplicationConfig] = None,
    initial: Optional[Sequence[int]] = None,
) -> ReplicationResult:
    """Reference replication-aware FM run (pre-optimization behavior)."""
    return ReferenceReplicationEngine(hg, config, initial).run()


