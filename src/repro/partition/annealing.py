"""Simulated-annealing bipartitioning baseline.

A compact Metropolis bipartitioner used as a second independent baseline
in the harness (the paper's related-work section surveys move-based
alternatives to FM).  Cost = cut size + a quadratic balance penalty; moves
are single-node side flips.  Deliberately simple: it exists to show where
FM (and FM + replication) stand, not to compete.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import cut_size


@dataclass
class AnnealingConfig:
    seed: int = 0
    initial_temperature: float = 2.0
    cooling: float = 0.95
    moves_per_temperature: float = 4.0  # x number of nodes
    min_temperature: float = 0.01
    balance_tolerance: float = 0.02
    balance_weight: float = 2.0


@dataclass
class AnnealingResult:
    assignment: List[int]
    cut_size: int
    temperature_steps: int
    accepted_moves: int


def annealing_bipartition(
    hg: Hypergraph, config: Optional[AnnealingConfig] = None
) -> AnnealingResult:
    """Anneal a bipartition; returns the best balanced state visited."""
    config = config or AnnealingConfig()
    rng = random.Random(config.seed)
    n_nodes = len(hg.nodes)

    side = [rng.randrange(2) for _ in range(n_nodes)]
    counts = [[0, 0] for _ in hg.nets]
    node_net_pins: List[List] = []
    for node in hg.nodes:
        pairs = {}
        for net in list(node.input_nets) + list(node.output_nets):
            pairs[net] = pairs.get(net, 0) + 1
        node_net_pins.append(list(pairs.items()))
        for net, k in pairs.items():
            counts[net][side[node.index]] += k

    weights = [node.clb_weight for node in hg.nodes]
    total = sum(weights)
    sizes = [0, 0]
    for v, w in enumerate(weights):
        sizes[side[v]] += w
    slack = max(1, int(config.balance_tolerance * total))

    def cut_now() -> int:
        return sum(1 for c in counts if c[0] > 0 and c[1] > 0)

    def balance_penalty(s0: int) -> float:
        over = max(0, abs(2 * s0 - total) - 2 * slack)
        return config.balance_weight * over * over

    cut = cut_now()
    cost = cut + balance_penalty(sizes[0])
    best_assignment = list(side)
    best_cut = cut if abs(2 * sizes[0] - total) <= 2 * slack else math.inf

    temperature = config.initial_temperature
    steps = 0
    accepted = 0
    moves_per_t = max(8, int(config.moves_per_temperature * n_nodes))
    while temperature > config.min_temperature:
        steps += 1
        for _ in range(moves_per_t):
            v = rng.randrange(n_nodes)
            s = side[v]
            delta_cut = 0
            for net, k in node_net_pins[v]:
                f, t = counts[net][s], counts[net][1 - s]
                before = f > 0 and t > 0
                after = (f - k) > 0 and (t + k) > 0
                delta_cut += int(after) - int(before)
            new_s0 = sizes[0] + (weights[v] if s == 1 else -weights[v])
            delta = delta_cut + balance_penalty(new_s0) - balance_penalty(sizes[0])
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                accepted += 1
                for net, k in node_net_pins[v]:
                    counts[net][s] -= k
                    counts[net][1 - s] += k
                side[v] = 1 - s
                sizes[s] -= weights[v]
                sizes[1 - s] += weights[v]
                cut += delta_cut
                if (
                    abs(2 * sizes[0] - total) <= 2 * slack
                    and cut < best_cut
                ):
                    best_cut = cut
                    best_assignment = list(side)
        temperature *= config.cooling

    if best_cut is math.inf:  # never balanced: return final state
        best_assignment = list(side)
        best_cut = cut_size(hg, best_assignment)
    return AnnealingResult(
        assignment=best_assignment,
        cut_size=int(best_cut),
        temperature_steps=steps,
        accepted_moves=accepted,
    )
