"""Partitioning engines and the device cost model.

* :mod:`repro.partition.devices` -- FPGA device library (paper Table I).
* :mod:`repro.partition.cost` -- objective functions (eqs. 1 and 2).
* :mod:`repro.partition.fm` -- classic Fiduccia-Mattheyses bipartitioning.
* :mod:`repro.partition.fm_replication` -- FM extended with functional
  (and, for ablation, traditional) replication moves.
* :mod:`repro.partition.kway` -- recursive multi-way partitioning into
  heterogeneous devices minimizing total cost and interconnect.
* :mod:`repro.partition.multilevel` -- coarsen-solve-uncoarsen V-cycle
  on the CSR core (initial-solution provider for the k-way carver).
"""

from repro.partition.devices import Device, DeviceLibrary, XC3000_LIBRARY, XC4000_LIBRARY
from repro.partition.cost import SolutionCost, solution_cost
from repro.partition.fm import fm_bipartition, FMConfig, FMResult
from repro.partition.fm_replication import (
    replication_bipartition,
    ReplicationConfig,
    ReplicationResult,
)
from repro.partition.kway import partition_heterogeneous, KWayConfig, KWaySolution
from repro.partition.clustering import multilevel_bipartition
from repro.partition.multilevel import (
    MultilevelConfig,
    MultilevelHierarchy,
    MultilevelResult,
    resolve_multilevel,
    vcycle_bipartition,
)
from repro.partition.verify import verify_solution
from repro.partition.spectral import SpectralConfig, SpectralResult, spectral_bipartition
from repro.partition.annealing import (
    AnnealingConfig,
    AnnealingResult,
    annealing_bipartition,
)
from repro.partition.report import bipartition_report, solution_report

__all__ = [
    "SpectralConfig",
    "SpectralResult",
    "spectral_bipartition",
    "AnnealingConfig",
    "AnnealingResult",
    "annealing_bipartition",
    "bipartition_report",
    "solution_report",
    "MultilevelConfig",
    "MultilevelHierarchy",
    "MultilevelResult",
    "multilevel_bipartition",
    "resolve_multilevel",
    "vcycle_bipartition",
    "verify_solution",
    "Device",
    "DeviceLibrary",
    "XC3000_LIBRARY",
    "XC4000_LIBRARY",
    "SolutionCost",
    "solution_cost",
    "fm_bipartition",
    "FMConfig",
    "FMResult",
    "replication_bipartition",
    "ReplicationConfig",
    "ReplicationResult",
    "partition_heterogeneous",
    "KWayConfig",
    "KWaySolution",
]
