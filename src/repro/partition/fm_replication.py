"""FM bipartitioning extended with replication moves (paper Section III.D).

The engine manages three node states:

* **SINGLE** -- one instance on one side (every node starts here);
* **functionally REPLICATED** -- two instances: the *original* keeps all
  outputs except one and the inputs supporting them, the *replica* on the
  far side drives the remaining output with exactly the inputs in its
  support (adjacency vector).  Shared inputs are pinned on both sides,
  exclusive inputs move with their output -- the paper's Figures 1/2/4;
* **traditionally REPLICATED** (ablation mode) -- the replica is a full
  copy; every output net is then served locally on both sides ("split"),
  which removes it from the cut unconditionally, while every input net is
  pinned on both sides.  This reproduces reference [13]'s behaviour and
  eq. (8).

The move repertoire per pass is: move a SINGLE node; replicate a SINGLE
multi-output cell whose replication potential satisfies ``psi >= T``
(choosing the output with the best gain, eq. 11); or un-replicate a
REPLICATED cell to either side (whose gain, as the paper notes, equals the
gain of moving one instance onto the other).  All gains are exact cut
deltas computed from per-net pin counts; ``tests/test_gain_model.py``
property-checks them against the closed-form expressions of
:mod:`repro.replication.gains`.
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.hypergraph.hypergraph import Hypergraph
from repro.obs.metrics import get_registry
from repro.replication.gains import MoveVectors
from repro.replication.potential import node_potential
from repro.robust import faults
from repro.robust.budget import Budget
from repro.robust.errors import ConfigError

#: Replication styles accepted by :class:`ReplicationConfig`.
FUNCTIONAL = "functional"
TRADITIONAL = "traditional"
NONE = "none"

#: How many committed moves between budget polls inside a pass.
_BUDGET_POLL_MOVES = 128

#: Upper bounds for the ``repl.pass_seconds`` histogram.
_PASS_SECONDS_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)

# Move kinds (internal).
_MOVE = 0
_REPLICATE = 1
_UNREPLICATE = 2


@dataclass
class ReplicationConfig:
    """Knobs for one replication-aware FM run.

    ``threshold`` is the paper's T: only cells with replication potential
    ``psi >= T`` may replicate (``float('inf')`` disables replication,
    ``0`` allows every multi-output cell).  ``style`` selects functional
    (the paper's contribution), traditional (reference [13], ablation) or
    none (plain FM semantics).
    """

    seed: int = 0
    threshold: Union[int, float] = 0
    style: str = FUNCTIONAL
    balance_tolerance: float = 0.02
    max_passes: int = 16
    side0_bounds: Optional[Tuple[int, int]] = None
    fixed: Dict[int, int] = field(default_factory=dict)
    allow_single_output_traditional: bool = True
    #: Optional cap on circuit growth: replication moves are inadmissible
    #: once total instances exceed ``(1 + max_growth) * total CLBs``.  None
    #: reproduces the paper's "we do not limit the replications explicitly";
    #: a cap makes style comparisons area-fair (traditional replication's
    #: split semantics can otherwise zero the cut by duplicating everything).
    max_growth: Optional[float] = None
    #: Run move-only FM passes to convergence before enabling replication
    #: moves.  Replication refines a good min-cut partition; from a random
    #: start its high-gain replications lock cells prematurely and strand
    #: the partition in poor local optima.
    warm_start_moves_only: bool = True
    #: Optional wall-clock budget; when it expires the engine stops
    #: refining at the next checkpoint and returns its best state so far.
    budget: Optional[Budget] = None

    def __post_init__(self) -> None:
        if self.style not in (FUNCTIONAL, TRADITIONAL, NONE):
            raise ConfigError(f"unknown replication style {self.style!r}")


@dataclass
class ReplicationResult:
    """Outcome of one replication-aware FM run."""

    sides: List[int]
    replicas: Dict[int, Tuple[int, int]]  # node -> (original side, far output)
    cut_size: int
    initial_cut: int
    passes: int
    pass_gains: List[int]
    n_cells: int

    @property
    def n_replicated(self) -> int:
        return len(self.replicas)

    @property
    def replicated_fraction(self) -> float:
        return self.n_replicated / self.n_cells if self.n_cells else 0.0

    def instance_sizes(self) -> Tuple[int, int]:
        """CLB instances per side (replicated cells count on both)."""
        sizes = [0, 0]
        for node, side in enumerate(self.sides):
            if node in self.replicas:
                sizes[0] += 1
                sizes[1] += 1
            else:
                sizes[side] += 1
        return sizes[0], sizes[1]


class ReplicationTables:
    """Static per-node pin tables of one hypergraph, engine-independent.

    Building these is O(total pins) and was profiled as a significant
    fraction of short runs when done per :class:`ReplicationEngine`; the
    multi-start drivers and the k-way carver build one instance per
    hypergraph and hand it to every candidate engine.  All fields are
    read-only to the engines.

    * ``all_pins[v]``: ``list[(net, count)]`` of the full cell;
    * ``orig_pins[v][o]`` / ``repl_pins[v][o]``: the two instances' pin
      tables when output ``o`` is taken by the replica (functional style);
    * ``potentials[v]``: the paper's replication potential psi;
    * ``net_nodes`` / ``net_maxk``: net incidence and critical-window
      bounds for the refresh scans.
    """

    __slots__ = (
        "hg",
        "all_pins",
        "orig_pins",
        "repl_pins",
        "merged_pins",
        "trad_pins",
        "potentials",
        "net_nodes",
        "net_node_counts",
        "net_maxk",
        "weights",
        "is_cell",
        "n_outputs",
        "output_nets",
    )

    def __init__(self, hg: Hypergraph) -> None:
        self.hg = hg
        n_nets = len(hg.nets)
        self.all_pins: List[List[Tuple[int, int]]] = []
        self.orig_pins: List[List[List[Tuple[int, int]]]] = []
        self.repl_pins: List[List[List[Tuple[int, int]]]] = []
        self.potentials: List[int] = []
        for node in hg.nodes:
            full: Dict[int, int] = {}
            for net in node.input_nets:
                full[net] = full.get(net, 0) + 1
            for net in node.output_nets:
                full[net] = full.get(net, 0) + 1
            self.all_pins.append(list(full.items()))
            per_output_orig: List[List[Tuple[int, int]]] = []
            per_output_repl: List[List[Tuple[int, int]]] = []
            if node.is_cell and node.n_outputs >= 2:
                for o in range(node.n_outputs):
                    kept_inputs: set = set()
                    for j, sup in enumerate(node.supports):
                        if j != o:
                            kept_inputs.update(sup)
                    orig: Dict[int, int] = {}
                    for pin in kept_inputs:
                        net = node.input_nets[pin]
                        orig[net] = orig.get(net, 0) + 1
                    for j, net in enumerate(node.output_nets):
                        if j != o:
                            orig[net] = orig.get(net, 0) + 1
                    repl: Dict[int, int] = {}
                    for pin in node.supports[o]:
                        net = node.input_nets[pin]
                        repl[net] = repl.get(net, 0) + 1
                    out_net = node.output_nets[o]
                    repl[out_net] = repl.get(out_net, 0) + 1
                    per_output_orig.append(list(orig.items()))
                    per_output_repl.append(list(repl.items()))
            self.orig_pins.append(per_output_orig)
            self.repl_pins.append(per_output_repl)
            self.potentials.append(node_potential(node) if node.is_cell else 0)

        # Merged per-(cell, output) pin views for the specialized
        # replication gain paths: every net of the cell with its full,
        # original-instance and replica-instance pin counts, in all_pins
        # order.  (Original and replica nets are always subsets of the
        # cell's nets, so one flat list covers both instances.)
        self.merged_pins: List[List[List[Tuple[int, int, int, int]]]] = []
        # Traditional-style view per cell: (net, full count, split delta),
        # the split delta counting the cell's output pins on that net.
        self.trad_pins: List[List[Tuple[int, int, int]]] = []
        for v, node in enumerate(hg.nodes):
            merged: List[List[Tuple[int, int, int, int]]] = []
            for o in range(len(self.orig_pins[v])):
                od = dict(self.orig_pins[v][o])
                rd = dict(self.repl_pins[v][o])
                merged.append(
                    [
                        (net, k, od.get(net, 0), rd.get(net, 0))
                        for net, k in self.all_pins[v]
                    ]
                )
            self.merged_pins.append(merged)
            if node.is_cell:
                out_count: Dict[int, int] = {}
                for net in node.output_nets:
                    out_count[net] = out_count.get(net, 0) + 1
                self.trad_pins.append(
                    [
                        (net, k, out_count.get(net, 0))
                        for net, k in self.all_pins[v]
                    ]
                )
            else:
                self.trad_pins.append([])

        self.net_nodes: List[List[int]] = [[] for _ in range(n_nets)]
        self.net_node_counts: List[List[int]] = [[] for _ in range(n_nets)]
        self.net_maxk: List[int] = [0] * n_nets
        for v, pairs in enumerate(self.all_pins):
            for net, k in pairs:
                self.net_nodes[net].append(v)
                self.net_node_counts[net].append(k)
                if k > self.net_maxk[net]:
                    self.net_maxk[net] = k

        self.weights = [node.clb_weight for node in hg.nodes]
        self.is_cell = [node.is_cell for node in hg.nodes]
        self.n_outputs = [node.n_outputs for node in hg.nodes]
        self.output_nets = [list(node.output_nets) for node in hg.nodes]


class ReplicationEngine:
    """The mutable partition state and move machinery.

    Exposed as a class (rather than only the :func:`replication_bipartition`
    driver) so tests and the k-way carver can drive and inspect it directly.
    Pass a pre-built :class:`ReplicationTables` when running many engines
    on one hypergraph to pay the static-table cost once.
    """

    def __init__(
        self,
        hg: Hypergraph,
        config: Optional[ReplicationConfig] = None,
        initial: Optional[Sequence[int]] = None,
        tables: Optional[ReplicationTables] = None,
    ) -> None:
        self.hg = hg
        self.config = config or ReplicationConfig()
        self.rng = random.Random(self.config.seed)
        n_nodes = len(hg.nodes)
        n_nets = len(hg.nets)

        if tables is None:
            tables = ReplicationTables(hg)
        elif tables.hg is not hg:
            raise ValueError("tables were built for a different hypergraph")
        self.tables = tables
        self.all_pins = tables.all_pins
        self.orig_pins = tables.orig_pins
        self.repl_pins = tables.repl_pins
        self.potentials = tables.potentials
        self.net_nodes = tables.net_nodes
        self.net_node_counts = tables.net_node_counts
        self.merged_pins = tables.merged_pins
        self.trad_pins = tables.trad_pins
        self.net_maxk = tables.net_maxk

        # --- dynamic state --------------------------------------------
        self.side: List[int] = self._initial_sides(initial)
        # rep[v] = (orig side, far output) or None.
        self.rep: List[Optional[Tuple[int, int]]] = [None] * n_nodes
        self.counts: List[List[int]] = [[0, 0] for _ in range(n_nets)]
        self.split: List[int] = [0] * n_nets  # traditional-replication splits
        for v in range(n_nodes):
            s = self.side[v]
            for net, k in self.all_pins[v]:
                self.counts[net][s] += k

        self.weights = tables.weights  # shared read-only
        self.sizes = [0, 0]
        for v, w in enumerate(self.weights):
            self.sizes[self.side[v]] += w
        self.total_weight = sum(self.weights)
        if self.config.side0_bounds is not None:
            self.lo0, self.hi0 = self.config.side0_bounds
            self.max_imbalance = None
        else:
            slack = max(1, int(self.config.balance_tolerance * self.total_weight))
            self.max_imbalance = 2 * slack
            self.lo0 = self.hi0 = None
        if self.config.max_growth is None:
            self.instance_cap = None
        else:
            self.instance_cap = int(
                (1.0 + self.config.max_growth) * self.total_weight
            )

        self.locked = [False] * n_nodes
        self.fixed_set = set(self.config.fixed)
        self.movable = [v for v in range(n_nodes) if v not in self.fixed_set]
        self.stamp = [0] * n_nodes
        self._push_counter = 0
        self._moves_only = False

        # Observability tallies: committed moves by kind, sgain-maintenance
        # work.  Accumulated unconditionally (cheap: one add per commit /
        # recompute), read at run boundaries by :meth:`run`.
        self.n_single_moves = 0
        self.n_replicates = 0
        self.n_unreplicates = 0
        self.n_sgain_updates = 0
        self.n_sgain_recomputes = 0

        # Maintained single-move gains: while a pass runs, ``sgain[v]`` is
        # the exact cut gain of moving an *unreplicated, unlocked* node v
        # to the far side, kept fresh by delta updates in set_state.
        # Outside a pass the array is stale and ``_maintain_sgain`` is
        # False, so the public query paths recompute from scratch.
        self.sgain = [0] * n_nodes
        self._maintain_sgain = False

        # _repl_arity[v]: replication candidate shape for SINGLE cells --
        # n_outputs > 0 (functional: one candidate per output), -1
        # (traditional: one full-copy candidate), 0 (ineligible).  The
        # warm-start move-only phase still gates candidates at push time.
        cfg = self.config
        self._repl_arity = [0] * n_nodes
        if cfg.style != NONE:
            for v in range(n_nodes):
                if tables.is_cell[v] and tables.potentials[v] >= cfg.threshold:
                    n_out = tables.n_outputs[v]
                    if cfg.style == FUNCTIONAL and n_out >= 2:
                        self._repl_arity[v] = n_out
                    elif cfg.style == TRADITIONAL and (
                        n_out >= 2 or cfg.allow_single_output_traditional
                    ):
                        self._repl_arity[v] = -1

        # Scratch arrays for delta accumulation (replacing per-call dicts
        # on the gain/commit hot path): per-net side-0/side-1/split deltas
        # plus a token-marked first-touch list.  Zeroed again after use.
        self._d0 = [0] * n_nets
        self._d1 = [0] * n_nets
        self._dsplit = [0] * n_nets
        self._mark = [0] * n_nets
        self._mark_token = 0

        # Incrementally maintained cut size (see set_state).
        self._cut = sum(
            1
            for net in range(n_nets)
            if self.split[net] == 0
            and self.counts[net][0] > 0
            and self.counts[net][1] > 0
        )

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _initial_sides(self, initial: Optional[Sequence[int]]) -> List[int]:
        hg, config = self.hg, self.config
        if initial is not None:
            sides = list(initial)
            if len(sides) != len(hg.nodes):
                raise ValueError("initial assignment length mismatch")
        else:
            order = list(range(len(hg.nodes)))
            self.rng.shuffle(order)
            total = sum(node.clb_weight for node in hg.nodes)
            if config.side0_bounds is not None:
                target0 = (config.side0_bounds[0] + config.side0_bounds[1]) / 2.0
            else:
                target0 = total / 2.0
            sides = [1] * len(hg.nodes)
            acc = 0
            for idx in order:
                w = hg.nodes[idx].clb_weight
                if w == 0:
                    sides[idx] = self.rng.randrange(2)
                elif acc + w <= target0:
                    sides[idx] = 0
                    acc += w
        for node_idx, fixed_side in config.fixed.items():
            sides[node_idx] = fixed_side
        return sides

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    def cut_size(self) -> int:
        """Current cut size, maintained incrementally by :meth:`set_state`."""
        return self._cut

    def is_cut(self, net: int) -> bool:
        return (
            self.split[net] == 0
            and self.counts[net][0] > 0
            and self.counts[net][1] > 0
        )

    def replicas(self) -> Dict[int, Tuple[int, int]]:
        return {v: r for v, r in enumerate(self.rep) if r is not None}

    def active_pins(self, v: int) -> List[Tuple[int, int, int]]:
        """Current active pins of node ``v`` as ``(net, side, count)``."""
        r = self.rep[v]
        if r is None:
            s = self.side[v]
            return [(net, s, k) for net, k in self.all_pins[v]]
        s, o = r
        if o < 0:  # traditional: full copies on both sides
            return [(net, s, k) for net, k in self.all_pins[v]] + [
                (net, 1 - s, k) for net, k in self.all_pins[v]
            ]
        return [(net, s, k) for net, k in self.orig_pins[v][o]] + [
            (net, 1 - s, k) for net, k in self.repl_pins[v][o]
        ]

    # ------------------------------------------------------------------
    # Move mechanics
    # ------------------------------------------------------------------
    def _state_pins(
        self, v: int, side: int, rep: Optional[Tuple[int, int]]
    ) -> List[Tuple[int, int, int]]:
        if rep is None:
            return [(net, side, k) for net, k in self.all_pins[v]]
        s, o = rep
        if o < 0:
            return [(net, s, k) for net, k in self.all_pins[v]] + [
                (net, 1 - s, k) for net, k in self.all_pins[v]
            ]
        return [(net, s, k) for net, k in self.orig_pins[v][o]] + [
            (net, 1 - s, k) for net, k in self.repl_pins[v][o]
        ]

    def _state_weight(self, v: int, rep: Optional[Tuple[int, int]]) -> Tuple[int, int]:
        """(side0 CLBs, side1 CLBs) of node ``v`` in the given state."""
        w = self.weights[v]
        if rep is None:
            return (w, 0) if self.side[v] == 0 else (0, w)
        return (w, w)

    def _net_delta(
        self,
        v: int,
        new_side: int,
        new_rep: Optional[Tuple[int, int]],
    ) -> Dict[int, List[int]]:
        """Per-net pin deltas [d_side0, d_side1, d_split] of a state change.

        Kept as a dict-returning inspection helper; the hot paths
        (:meth:`move_gain`, :meth:`set_state`) use the scratch-array
        :meth:`_fill_deltas` instead, which accumulates into preallocated
        per-net arrays and records first-touch order.
        """
        deltas: Dict[int, List[int]] = {}
        for net, s, k in self.active_pins(v):
            d = deltas.setdefault(net, [0, 0, 0])
            d[s] -= k
        cur = self.rep[v]
        if cur is not None and cur[1] < 0:
            for net in self.hg.nodes[v].output_nets:
                deltas.setdefault(net, [0, 0, 0])[2] -= 1
        for net, s, k in self._state_pins(v, new_side, new_rep):
            d = deltas.setdefault(net, [0, 0, 0])
            d[s] += k
        if new_rep is not None and new_rep[1] < 0:
            for net in self.hg.nodes[v].output_nets:
                deltas.setdefault(net, [0, 0, 0])[2] += 1
        return deltas

    def _fill_deltas(
        self, v: int, new_side: int, new_rep: Optional[Tuple[int, int]]
    ) -> List[int]:
        """Accumulate the state change's per-net deltas into the scratch
        arrays ``_d0``/``_d1``/``_dsplit``; returns the touched nets in
        first-touch order (the same order :meth:`_net_delta` yields keys,
        which the pass loop's refresh scan depends on).  The caller must
        zero the scratch entries of every returned net when done.
        """
        d0, d1, ds = self._d0, self._d1, self._dsplit
        mark = self._mark
        token = self._mark_token = self._mark_token + 1
        touched: List[int] = []
        append = touched.append

        # Remove the current state's pins.
        r = self.rep[v]
        if r is None:
            s = self.side[v]
            dfrom = d0 if s == 0 else d1
            for net, k in self.all_pins[v]:
                if mark[net] != token:
                    mark[net] = token
                    append(net)
                dfrom[net] -= k
        else:
            s, o = r
            if o < 0:  # traditional: full copies on both sides + splits
                for net, k in self.all_pins[v]:
                    if mark[net] != token:
                        mark[net] = token
                        append(net)
                    d0[net] -= k
                    d1[net] -= k
                for net in self.tables.output_nets[v]:
                    if mark[net] != token:
                        mark[net] = token
                        append(net)
                    ds[net] -= 1
            else:
                dorig = d0 if s == 0 else d1
                drepl = d1 if s == 0 else d0
                for net, k in self.orig_pins[v][o]:
                    if mark[net] != token:
                        mark[net] = token
                        append(net)
                    dorig[net] -= k
                for net, k in self.repl_pins[v][o]:
                    if mark[net] != token:
                        mark[net] = token
                        append(net)
                    drepl[net] -= k

        # Add the new state's pins.
        if new_rep is None:
            dto = d0 if new_side == 0 else d1
            for net, k in self.all_pins[v]:
                if mark[net] != token:
                    mark[net] = token
                    append(net)
                dto[net] += k
        else:
            s, o = new_rep
            if o < 0:
                for net, k in self.all_pins[v]:
                    if mark[net] != token:
                        mark[net] = token
                        append(net)
                    d0[net] += k
                    d1[net] += k
                for net in self.tables.output_nets[v]:
                    if mark[net] != token:
                        mark[net] = token
                        append(net)
                    ds[net] += 1
            else:
                dorig = d0 if s == 0 else d1
                drepl = d1 if s == 0 else d0
                for net, k in self.orig_pins[v][o]:
                    if mark[net] != token:
                        mark[net] = token
                        append(net)
                    dorig[net] += k
                for net, k in self.repl_pins[v][o]:
                    if mark[net] != token:
                        mark[net] = token
                        append(net)
                    drepl[net] += k
        return touched

    def move_gain(self, v: int, new_side: int, new_rep: Optional[Tuple[int, int]]) -> int:
        """Exact cut delta (positive = improvement) of a state change.

        Each (current state, target state) combination has a specialized
        flat loop over a precomputed pin view; state changes outside the
        move repertoire (replicated -> replicated) fall back to the
        generic scratch-array delta accumulation.
        """
        counts, split = self.counts, self.split
        r = self.rep[v]
        if r is None:
            s = self.side[v]
            if new_rep is None:
                # Plain single-node move: deltas are +/-k on the two
                # sides of each of the node's nets.
                gain = 0
                for net, k in self.all_pins[v]:
                    if split[net]:
                        continue  # split nets stay uncut under any move
                    c = counts[net]
                    c0 = c[0]
                    c1 = c[1]
                    if s == 0:
                        a0 = c0 - k
                        a1 = c1 + k
                    else:
                        a0 = c0 + k
                        a1 = c1 - k
                    if c0 > 0 and c1 > 0:
                        gain += 1
                    if a0 > 0 and a1 > 0:
                        gain -= 1
                return gain
            rs, o = new_rep
            if o >= 0:
                # Functional replicate: the original keeps side ``rs``
                # with its reduced pins, the replica lands opposite.
                gain = 0
                for net, ka, ko, kr in self.merged_pins[v][o]:
                    if split[net]:
                        continue
                    c = counts[net]
                    c0 = c[0]
                    c1 = c[1]
                    if s == 0:
                        a0 = c0 - ka
                        a1 = c1
                    else:
                        a0 = c0
                        a1 = c1 - ka
                    if rs == 0:
                        a0 += ko
                        a1 += kr
                    else:
                        a0 += kr
                        a1 += ko
                    if c0 > 0 and c1 > 0:
                        gain += 1
                    if a0 > 0 and a1 > 0:
                        gain -= 1
                return gain
            # Traditional replicate: a full copy appears on the far side
            # and every output net becomes split (uncut by definition).
            gain = 0
            for net, ka, dsp in self.trad_pins[v]:
                c = counts[net]
                c0 = c[0]
                c1 = c[1]
                sp = split[net]
                if s == 0:
                    a0 = c0
                    a1 = c1 + ka
                else:
                    a0 = c0 + ka
                    a1 = c1
                if sp == 0 and c0 > 0 and c1 > 0:
                    gain += 1
                if sp + dsp == 0 and a0 > 0 and a1 > 0:
                    gain -= 1
            return gain
        if new_rep is None:
            s, o = r
            t = new_side
            if o >= 0:
                # Functional un-replicate: collapse both instances into
                # one full copy on side ``t``.
                gain = 0
                for net, ka, ko, kr in self.merged_pins[v][o]:
                    if split[net]:
                        continue
                    c = counts[net]
                    c0 = c[0]
                    c1 = c[1]
                    if s == 0:
                        a0 = c0 - ko
                        a1 = c1 - kr
                    else:
                        a0 = c0 - kr
                        a1 = c1 - ko
                    if t == 0:
                        a0 += ka
                    else:
                        a1 += ka
                    if c0 > 0 and c1 > 0:
                        gain += 1
                    if a0 > 0 and a1 > 0:
                        gain -= 1
                return gain
            # Traditional un-replicate: drop the copy opposite ``t`` and
            # un-split the output nets.
            gain = 0
            for net, ka, dsp in self.trad_pins[v]:
                c = counts[net]
                c0 = c[0]
                c1 = c[1]
                sp = split[net]
                if t == 0:
                    a0 = c0
                    a1 = c1 - ka
                else:
                    a0 = c0 - ka
                    a1 = c1
                if sp == 0 and c0 > 0 and c1 > 0:
                    gain += 1
                if sp - dsp == 0 and a0 > 0 and a1 > 0:
                    gain -= 1
            return gain
        d0, d1, ds = self._d0, self._d1, self._dsplit
        touched = self._fill_deltas(v, new_side, new_rep)
        gain = 0
        for net in touched:
            c = counts[net]
            c0 = c[0]
            c1 = c[1]
            sp = split[net]
            if sp == 0 and c0 > 0 and c1 > 0:
                gain += 1
            if sp + ds[net] == 0 and c0 + d0[net] > 0 and c1 + d1[net] > 0:
                gain -= 1
            d0[net] = 0
            d1[net] = 0
            ds[net] = 0
        return gain

    def _set_side_single(self, v: int, new_side: int) -> List[int]:
        """Specialized :meth:`set_state` for a plain single-node move
        (the overwhelmingly common commit): no split changes, touched
        nets are exactly the node's nets in ``all_pins`` order -- the
        same first-touch order the generic path yields."""
        counts, split = self.counts, self.split
        s = self.side[v]
        cut = self._cut
        maintain = self._maintain_sgain
        if maintain:
            sgain, side, rep, locked = self.sgain, self.side, self.rep, self.locked
            net_nodes, net_counts = self.net_nodes, self.net_node_counts
            net_maxk = self.net_maxk
        nupd = 0
        touched: List[int] = []
        append = touched.append
        for net, k in self.all_pins[v]:
            append(net)
            c = counts[net]
            b0 = c[0]
            b1 = c[1]
            if s == 0:
                a0 = b0 - k
                a1 = b1
            else:
                a0 = b0
                a1 = b1 - k
            if new_side == 0:
                a0 += k
            else:
                a1 += k
            c[0] = a0
            c[1] = a1
            if split[net]:
                continue  # split nets never change cut status or gains
            bc = b0 > 0 and b1 > 0
            ac = a0 > 0 and a1 > 0
            if bc:
                cut -= 1
            if ac:
                cut += 1
            if maintain:
                w = net_maxk[net]
                if b0 <= w or b1 <= w or a0 <= w or a1 <= w:
                    for u, k_u in zip(net_nodes[net], net_counts[net]):
                        if u == v or locked[u] or rep[u] is not None:
                            continue
                        if side[u] == 0:
                            bs = b0
                            as_ = a0
                        else:
                            bs = b1
                            as_ = a1
                        cb = (1 if bc else 0) - (1 if bs > k_u else 0)
                        ca = (1 if ac else 0) - (1 if as_ > k_u else 0)
                        if ca != cb:
                            sgain[u] += ca - cb
                            nupd += 1
        self._cut = cut
        self.n_sgain_updates += nupd
        if s != new_side:
            w_v = self.weights[v]
            self.sizes[s] -= w_v
            self.sizes[new_side] += w_v
            self.side[v] = new_side
        return touched

    def set_state(
        self, v: int, new_side: int, new_rep: Optional[Tuple[int, int]]
    ) -> List[int]:
        """Commit a state change; returns the affected net indices."""
        if new_rep is None and self.rep[v] is None:
            return self._set_side_single(v, new_side)
        counts, split = self.counts, self.split
        d0, d1, ds = self._d0, self._d1, self._dsplit
        touched = self._fill_deltas(v, new_side, new_rep)
        cut = self._cut
        maintain = self._maintain_sgain
        if maintain:
            sgain, side, rep, locked = self.sgain, self.side, self.rep, self.locked
            net_nodes, net_counts = self.net_nodes, self.net_node_counts
            net_maxk = self.net_maxk
        nupd = 0
        for net in touched:
            c = counts[net]
            sp = split[net]
            b0 = c[0]
            b1 = c[1]
            bc = sp == 0 and b0 > 0 and b1 > 0
            if bc:
                cut -= 1
            a0 = b0 + d0[net]
            a1 = b1 + d1[net]
            nsp = sp + ds[net]
            c[0] = a0
            c[1] = a1
            split[net] = nsp
            ac = nsp == 0 and a0 > 0 and a1 > 0
            if ac:
                cut += 1
            d0[net] = 0
            d1[net] = 0
            ds[net] = 0
            if maintain:
                # A member's single-move gain contribution from this net is
                #   [net is cut] - [sp == 0 and c_(member side) > k_member]
                # (moving it leaves k on the far side, so the far side stays
                # populated).  Both predicates are unchanged when the split
                # flag did not flip and both side counts stay above the
                # net's max per-node pin count before *and* after -- the
                # exact critical window, so the skip loses nothing.
                w = net_maxk[net]
                if (
                    nsp != sp
                    or b0 <= w
                    or b1 <= w
                    or a0 <= w
                    or a1 <= w
                ):
                    for u, k_u in zip(net_nodes[net], net_counts[net]):
                        if u == v or locked[u] or rep[u] is not None:
                            continue
                        if side[u] == 0:
                            bs = b0
                            as_ = a0
                        else:
                            bs = b1
                            as_ = a1
                        cb = (1 if bc else 0) - (
                            1 if (sp == 0 and bs > k_u) else 0
                        )
                        ca = (1 if ac else 0) - (
                            1 if (nsp == 0 and as_ > k_u) else 0
                        )
                        if ca != cb:
                            sgain[u] += ca - cb
                            nupd += 1
        self._cut = cut
        self.n_sgain_updates += nupd
        old_w = self._state_weight(v, self.rep[v])
        self.side[v] = new_side
        self.rep[v] = new_rep
        new_w = self._state_weight(v, new_rep)
        self.sizes[0] += new_w[0] - old_w[0]
        self.sizes[1] += new_w[1] - old_w[1]
        return touched

    # ------------------------------------------------------------------
    # Candidate moves
    # ------------------------------------------------------------------
    def _balance_ok(self, v: int, new_rep: Optional[Tuple[int, int]], new_side: int) -> bool:
        w = self.weights[v]
        if self.rep[v] is None:
            o0, o1 = (w, 0) if self.side[v] == 0 else (0, w)
        else:
            o0 = o1 = w
        if new_rep is None:
            n0, n1 = (w, 0) if new_side == 0 else (0, w)
        else:
            n0 = n1 = w
        s0 = self.sizes[0] + n0 - o0
        s1 = self.sizes[1] + n1 - o1
        if self.instance_cap is not None and s0 + s1 > self.instance_cap:
            return False
        if self.lo0 is not None:
            return self.lo0 <= s0 <= self.hi0 and s1 >= 0
        assert self.max_imbalance is not None
        if w == 0:
            return True
        return abs(s0 - s1) <= self.max_imbalance

    def candidate_moves(self, v: int) -> List[Tuple[int, int, Optional[Tuple[int, int]]]]:
        """Legal moves for node ``v`` as ``(gain, new_side, new_rep)``.

        Balance admissibility is *not* filtered here; the pass loop defers
        balance-blocked moves and retries them as sizes change, like the
        classic FM bucket scan.
        """
        node = self.hg.nodes[v]
        moves: List[Tuple[int, int, Optional[Tuple[int, int]]]] = []
        r = self.rep[v]
        if r is None:
            s = self.side[v]
            moves.append((self.move_gain(v, 1 - s, None), 1 - s, None))
            if node.is_cell and self.config.style != NONE and not self._moves_only:
                if self.potentials[v] >= self.config.threshold:
                    if self.config.style == FUNCTIONAL and node.n_outputs >= 2:
                        for o in range(node.n_outputs):
                            rep = (s, o)
                            moves.append((self.move_gain(v, s, rep), s, rep))
                    elif self.config.style == TRADITIONAL and (
                        node.n_outputs >= 2
                        or self.config.allow_single_output_traditional
                    ):
                        rep = (s, -1)
                        moves.append((self.move_gain(v, s, rep), s, rep))
        else:
            for t in (0, 1):
                moves.append((self.move_gain(v, t, None), t, None))
        return moves

    def _recompute_sgains(self) -> None:
        """Re-derive ``sgain`` for every movable unreplicated node.

        Same arithmetic as :meth:`move_gain`'s single-move fast path; run
        at pass start, after which :meth:`set_state` keeps the values
        exact for unlocked nodes by delta updates.
        """
        counts, split = self.counts, self.split
        side, rep = self.side, self.rep
        sgain, all_pins = self.sgain, self.all_pins
        for v in self.movable:
            if rep[v] is not None:
                continue
            s = side[v]
            g = 0
            for net, k in all_pins[v]:
                if split[net]:
                    continue
                c = counts[net]
                c0 = c[0]
                c1 = c[1]
                if s == 0:
                    a0 = c0 - k
                    a1 = c1 + k
                else:
                    a0 = c0 + k
                    a1 = c1 - k
                if c0 > 0 and c1 > 0:
                    g += 1
                if a0 > 0 and a1 > 0:
                    g -= 1
            sgain[v] = g
        self.n_sgain_recomputes += 1

    def best_move(self, v: int) -> Optional[Tuple[int, int, Optional[Tuple[int, int]]]]:
        """Highest-gain legal move of ``v``; ties resolve in candidate order
        (single move, then replications by output, then un-replicate to
        side 0 before side 1 -- ``max()``'s first-wins semantics over
        :meth:`candidate_moves`, without building the list)."""
        r = self.rep[v]
        if r is not None:
            g0 = self.move_gain(v, 0, None)
            g1 = self.move_gain(v, 1, None)
            if g0 >= g1:
                return (g0, 0, None)
            return (g1, 1, None)
        s = self.side[v]
        if self._maintain_sgain:
            best_gain = self.sgain[v]
        else:
            best_gain = self.move_gain(v, 1 - s, None)
        best: Tuple[int, int, Optional[Tuple[int, int]]] = (best_gain, 1 - s, None)
        arity = 0 if self._moves_only else self._repl_arity[v]
        if arity > 0:
            for o in range(arity):
                rep = (s, o)
                g = self.move_gain(v, s, rep)
                if g > best_gain:
                    best_gain = g
                    best = (g, s, rep)
        elif arity < 0:
            rep = (s, -1)
            g = self.move_gain(v, s, rep)
            if g > best_gain:
                best = (g, s, rep)
        return best

    # ------------------------------------------------------------------
    # Paper vector extraction (for the unified-cost-model tests)
    # ------------------------------------------------------------------
    def move_vectors(self, v: int) -> MoveVectors:
        """Extract (A, C^I, Q^I, C^O, Q^O) for a SINGLE cell node.

        Requires one pin per net per cell (the paper's setting); raises
        ``ValueError`` otherwise.
        """
        node = self.hg.nodes[v]
        if self.rep[v] is not None:
            raise ValueError("vectors are defined for unreplicated cells")
        seen: set = set()
        for net in list(node.input_nets) + list(node.output_nets):
            if net in seen:
                raise ValueError("cell touches a net with more than one pin")
            seen.add(net)
        s = self.side[v]

        def pin_vectors(nets: Iterable[int]) -> Tuple[List[int], List[int]]:
            c_vec: List[int] = []
            q_vec: List[int] = []
            for net in nets:
                cut = self.is_cut(net)
                c_vec.append(int(cut))
                if cut:
                    q_vec.append(int(self.counts[net][s] == 1))
                else:
                    q_vec.append(int(self.counts[net][s] > 1))
            return c_vec, q_vec

        ci, qi = pin_vectors(node.input_nets)
        co, qo = pin_vectors(node.output_nets)
        return MoveVectors(
            a=tuple(node.adjacency_vector(o) for o in range(node.n_outputs)),
            ci=tuple(ci),
            qi=tuple(qi),
            co=tuple(co),
            qo=tuple(qo),
        )

    # ------------------------------------------------------------------
    # Pass loop
    # ------------------------------------------------------------------
    def _push(self, heap: List, v: int) -> None:
        best = self.best_move(v)
        if best is None:
            return
        self.stamp[v] += 1
        self._push_counter += 1
        heapq.heappush(
            heap, (-best[0], self._push_counter, v, self.stamp[v], best[1], best[2])
        )

    def run_pass(self) -> int:
        """One FM pass with replication moves; returns the accepted gain."""
        for v in range(len(self.locked)):
            # Fixed nodes stay locked so neighbour refreshes cannot requeue them.
            self.locked[v] = v in self.fixed_set
        self._recompute_sgains()
        self._maintain_sgain = True
        try:
            return self._run_pass_body()
        finally:
            self._maintain_sgain = False

    def _run_pass_body(self) -> int:
        heap: List = []
        # Hot loop: localize attribute lookups and inline _push plus the
        # single-move balance check (the overwhelmingly common cases).
        heappush = heapq.heappush
        heappop = heapq.heappop
        best_move = self.best_move
        move_gain = self.move_gain
        set_state = self.set_state
        locked = self.locked
        stamp = self.stamp
        sgain = self.sgain
        rep = self.rep
        side = self.side
        sizes = self.sizes
        weights = self.weights
        counts = self.counts
        net_maxk = self.net_maxk
        net_nodes = self.net_nodes
        lo0, hi0 = self.lo0, self.hi0
        max_imb = self.max_imbalance
        budget = self.config.budget
        pc = self._push_counter

        for v in self.movable:
            best = best_move(v)
            if best is not None:
                stamp[v] += 1
                pc += 1
                heappush(heap, (-best[0], pc, v, stamp[v], best[1], best[2]))

        undo: List[Tuple[int, int, Optional[Tuple[int, int]]]] = []
        deferred: List[Tuple] = []
        cumulative = 0
        best_gain = 0
        best_index = 0
        n_single = n_repl = n_unrep = 0

        while heap:
            entry = heappop(heap)
            neg_gain, _, v, st, new_side, new_rep = entry
            if locked[v] or st != stamp[v]:
                continue
            if new_rep is None and rep[v] is None:
                # Single move: total instances are unchanged, so the growth
                # cap cannot newly fail; only the side balance matters.  The
                # maintained sgain *is* the exact gain.
                w = weights[v]
                if new_side == 0:
                    s0 = sizes[0] + w
                    s1 = sizes[1] - w
                else:
                    s0 = sizes[0] - w
                    s1 = sizes[1] + w
                if lo0 is not None:
                    ok = lo0 <= s0 <= hi0 and s1 >= 0
                else:
                    ok = w == 0 or abs(s0 - s1) <= max_imb
                gain = sgain[v]
            else:
                ok = self._balance_ok(v, new_rep, new_side)
                # The stored gain may be stale; verify and refresh if needed.
                gain = move_gain(v, new_side, new_rep) if ok else 0
            if not ok:
                # Balance-blocked: park the entry; retried after each move.
                deferred.append(entry)
                continue
            if gain != -neg_gain:
                best = best_move(v)
                if best is not None:
                    stamp[v] += 1
                    pc += 1
                    heappush(
                        heap, (-best[0], pc, v, stamp[v], best[1], best[2])
                    )
                continue

            old_rep = rep[v]
            undo.append((v, side[v], old_rep))
            changed = set_state(v, new_side, new_rep)
            locked[v] = True
            if new_rep is not None:
                n_repl += 1
            elif old_rep is not None:
                n_unrep += 1
            else:
                n_single += 1
            cumulative += gain
            if cumulative > best_gain:
                best_gain = cumulative
                best_index = len(undo)

            if (
                budget is not None
                and len(undo) % _BUDGET_POLL_MOVES == 0
                and budget.expired
            ):
                break  # rollback below still lands on the best prefix

            if deferred:
                for parked in deferred:
                    pv = parked[2]
                    if not locked[pv] and parked[3] == stamp[pv]:
                        heappush(heap, parked)
                deferred.clear()

            for net in changed:
                c = counts[net]
                window = net_maxk[net] * 2 + 1
                if c[0] > window and c[1] > window:
                    continue
                for other in net_nodes[net]:
                    if other != v and not locked[other]:
                        best = best_move(other)
                        if best is not None:
                            stamp[other] += 1
                            pc += 1
                            heappush(
                                heap,
                                (
                                    -best[0],
                                    pc,
                                    other,
                                    stamp[other],
                                    best[1],
                                    best[2],
                                ),
                            )

        self._push_counter = pc
        self._maintain_sgain = False  # rollback needs no gain upkeep
        self.n_single_moves += n_single
        self.n_replicates += n_repl
        self.n_unreplicates += n_unrep
        for v, old_side, old_rep in reversed(undo[best_index:]):
            set_state(v, old_side, old_rep)
        return best_gain

    def run(self) -> ReplicationResult:
        faults.maybe_fire(
            "engine.run", style=self.config.style, seed=self.config.seed
        )
        reg = get_registry()
        if reg.enabled:
            with reg.span(
                "repl.run",
                seed=self.config.seed,
                style=self.config.style,
                nodes=len(self.hg.nodes),
            ):
                return self._run_inner(reg)
        return self._run_inner(None)

    def _run_inner(self, reg) -> ReplicationResult:
        budget = self.config.budget
        initial_cut = self.cut_size()
        pass_gains: List[int] = []
        hist = (
            reg.histogram("repl.pass_seconds", _PASS_SECONDS_BUCKETS)
            if reg
            else None
        )
        base = (
            self.n_single_moves,
            self.n_replicates,
            self.n_unreplicates,
            self.n_sgain_updates,
            self.n_sgain_recomputes,
        )

        def one_pass() -> int:
            if hist is None:
                return self.run_pass()
            t0 = time.perf_counter()
            gain = self.run_pass()
            hist.observe(time.perf_counter() - t0)
            return gain

        replication_on = self.config.style != NONE
        if replication_on and self.config.warm_start_moves_only:
            self._moves_only = True
            for _ in range(self.config.max_passes):
                if budget is not None and budget.expired:
                    break
                gain = one_pass()
                pass_gains.append(gain)
                if gain <= 0:
                    break
            self._moves_only = False
        for _ in range(self.config.max_passes):
            if budget is not None and budget.expired:
                break
            gain = one_pass()
            pass_gains.append(gain)
            if gain <= 0:
                break

        if reg is not None:
            reg.counter("repl.runs").inc()
            reg.counter("repl.passes").inc(len(pass_gains))
            reg.counter("repl.moves.single").inc(self.n_single_moves - base[0])
            reg.counter("repl.moves.replicate").inc(self.n_replicates - base[1])
            reg.counter("repl.moves.unreplicate").inc(
                self.n_unreplicates - base[2]
            )
            reg.counter("repl.sgain_updates").inc(self.n_sgain_updates - base[3])
            reg.counter("repl.sgain_recomputes").inc(
                self.n_sgain_recomputes - base[4]
            )
            # Per-run convergence series for the run ledger (one event
            # per run, outside the pass loop -- no hot-path cost).
            reg.emit_event(
                "repl.run_gains",
                seed=self.config.seed,
                style=self.config.style,
                initial_cut=initial_cut,
                final_cut=self.cut_size(),
                gains=list(pass_gains),
            )
        return ReplicationResult(
            sides=list(self.side),
            replicas=self.replicas(),
            cut_size=self.cut_size(),
            initial_cut=initial_cut,
            passes=len(pass_gains),
            pass_gains=pass_gains,
            n_cells=self.hg.n_cells,
        )


def replication_bipartition(
    hg: Hypergraph,
    config: Optional[ReplicationConfig] = None,
    initial: Optional[Sequence[int]] = None,
    tables: Optional[ReplicationTables] = None,
) -> ReplicationResult:
    """Run one replication-aware FM bipartitioning on ``hg``."""
    return ReplicationEngine(hg, config, initial, tables=tables).run()


def best_of_runs(
    hg: Hypergraph,
    runs: int,
    base_config: Optional[ReplicationConfig] = None,
    jobs: int = 1,
) -> Tuple[ReplicationResult, List[int]]:
    """Run ``runs`` seeded runs; return (best result, all final cut sizes).

    Derived configs are :func:`dataclasses.replace` copies sharing the
    base config's ``fixed`` mapping and ``budget`` object (read-only to
    the runs); only the seed differs.  ``jobs > 1`` fans the runs out
    over a process pool with a deterministic ordered reduction.
    """
    base = base_config or ReplicationConfig()
    if jobs > 1:
        from repro.perf.parallel import parallel_best_of_runs_replication

        return parallel_best_of_runs_replication(hg, runs, base, jobs)
    best: Optional[ReplicationResult] = None
    cuts: List[int] = []
    tables = ReplicationTables(hg)
    for run in range(runs):
        if best is not None and base.budget is not None and base.budget.expired:
            break
        config = replace(base, seed=base.seed * 7919 + run)
        result = replication_bipartition(hg, config, tables=tables)
        cuts.append(result.cut_size)
        if best is None or result.cut_size < best.cut_size:
            best = result
    assert best is not None
    return best, cuts
