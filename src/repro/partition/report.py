"""Human-readable reports for partitioning results.

Formatting helpers shared by the CLI and the examples: block tables for
k-way solutions and run summaries for bipartitioning experiments.
"""

from __future__ import annotations

from typing import List

from repro.core.results import BipartitionReport
from repro.partition.kway import KWaySolution


def solution_report(solution: KWaySolution) -> str:
    """A block-by-block table of one k-way solution."""
    lines = [
        f"{solution.name}: k = {solution.k}, "
        f"total cost = {solution.cost.total_cost:.0f}, "
        f"feasible = {solution.feasible}",
        f"devices: {solution.cost.device_counts}",
        f"avg CLB utilization {100 * solution.cost.avg_clb_utilization:.1f}%  "
        f"avg IOB utilization {100 * solution.cost.avg_iob_utilization:.1f}%  "
        f"replicated cells {len(solution.replicated_cells)} "
        f"({100 * solution.replicated_fraction:.1f}%)",
        "",
        f"{'block':>5}  {'device':<8}  {'CLBs':>9}  {'IOBs':>9}  "
        f"{'CLB%':>6}  {'IOB%':>6}  {'pads':>4}",
    ]
    for block in solution.blocks:
        clb_pct = 100.0 * block.n_clbs / block.device.clbs
        iob_pct = 100.0 * block.terminals / block.device.terminals
        lines.append(
            f"{block.index:>5}  {block.device.name:<8}  "
            f"{block.n_clbs:>4}/{block.device.clbs:<4}  "
            f"{block.terminals:>4}/{block.device.terminals:<4}  "
            f"{clb_pct:>5.1f}%  {iob_pct:>5.1f}%  {len(block.pads):>4}"
        )
    return "\n".join(lines)


def bipartition_report(reports: List[BipartitionReport]) -> str:
    """Side-by-side comparison of bipartitioning runs on one circuit."""
    if not reports:
        return "(no runs)"
    lines = [
        f"{reports[0].circuit}: {reports[0].n_cells} cells, "
        f"{reports[0].runs} runs each",
        f"{'algorithm':<16}  {'best':>6}  {'avg':>8}  {'repl':>6}  {'sec':>7}",
    ]
    baseline = reports[0].avg_cut
    for report in reports:
        delta = ""
        if report is not reports[0] and baseline:
            delta = f"  ({100 * (baseline - report.avg_cut) / baseline:+.1f}% avg)"
        lines.append(
            f"{report.algorithm:<16}  {report.best_cut:>6}  "
            f"{report.avg_cut:>8.1f}  {report.avg_replicated:>6.1f}  "
            f"{report.elapsed_seconds:>7.2f}{delta}"
        )
    return "\n".join(lines)
