"""Legacy object-graph multilevel bipartitioning (now a thin shim).

The production multilevel engine lives in
:mod:`repro.partition.multilevel`: the same classic coarsen-solve-
uncoarsen scheme, but run entirely on flat
:class:`~repro.hypergraph.compact.CompactHypergraph` arrays (an order of
magnitude faster on large netlists).  This module keeps the historical
entry points alive:

* :func:`multilevel_bipartition` delegates to
  :func:`repro.partition.multilevel.vcycle_bipartition` and emits a
  :class:`DeprecationWarning`.
* ``MultilevelConfig`` / ``MultilevelResult`` are re-exported from the
  new module (the new config is a strict superset of the old one).
* :func:`coarsen_once` / :func:`_affinity_matching` -- the original
  object-graph coarsening step -- remain for tests and for
  :func:`_legacy_multilevel_bipartition`, the reference implementation
  that the parity tests compare the CSR engine against.

Terminals are never clustered, so terminal-relaxed and terminal-bearing
hypergraphs both work.
"""

from __future__ import annotations

import random
import warnings
from typing import Dict, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph, NodeKind, PIN_OUT
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.fm_replication import (
    FUNCTIONAL,
    ReplicationConfig,
    ReplicationEngine,
    ReplicationResult,
)
from repro.partition.multilevel import (
    _MAX_SCORING_DEGREE,
    MultilevelConfig,
    MultilevelResult,
    vcycle_bipartition,
)

__all__ = [
    "MultilevelConfig",
    "MultilevelResult",
    "coarsen_once",
    "multilevel_bipartition",
]


def _affinity_matching(
    hg: Hypergraph, rng: random.Random
) -> List[List[int]]:
    """Greedy heavy-connectivity matching; returns the coarse groups."""
    scores: List[Dict[int, float]] = [dict() for _ in hg.nodes]
    for net in hg.nets:
        members = [
            idx for idx in net.node_indices() if hg.nodes[idx].is_cell
        ]
        if len(members) < 2 or len(members) > _MAX_SCORING_DEGREE:
            continue
        w = 1.0 / (len(members) - 1)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                scores[u][v] = scores[u].get(v, 0.0) + w
                scores[v][u] = scores[v].get(u, 0.0) + w

    order = [n.index for n in hg.nodes if n.is_cell]
    rng.shuffle(order)
    matched = [False] * len(hg.nodes)
    groups: List[List[int]] = []
    for u in order:
        if matched[u]:
            continue
        best_v = -1
        best_score = 0.0
        u_weight = hg.nodes[u].weight
        for v, score in scores[u].items():
            if matched[v]:
                continue
            # Prefer light partners: keeps coarse weights balanced.
            adj = score / (1.0 + 0.1 * (hg.nodes[v].weight + u_weight))
            if adj > best_score:
                best_score = adj
                best_v = v
        matched[u] = True
        if best_v >= 0:
            matched[best_v] = True
            groups.append([u, best_v])
        else:
            groups.append([u])
    return groups


def coarsen_once(
    hg: Hypergraph, rng: random.Random
) -> Tuple[Hypergraph, List[List[int]]]:
    """One coarsening level: returns (coarse hypergraph, coarse -> fine map).

    Terminals map one-to-one; only cells merge.  Nets internal to a group
    vanish; surviving nets keep one pin per (coarse node, direction).
    """
    groups = _affinity_matching(hg, rng)
    coarse = Hypergraph(f"{hg.name}|coarse")
    fine_to_coarse: Dict[int, int] = {}
    mapping: List[List[int]] = []

    for group in groups:
        node = coarse.add_node(f"g{len(mapping)}", NodeKind.CELL)
        node.weight = sum(hg.nodes[f].weight for f in group)
        for fine in group:
            fine_to_coarse[fine] = node.index
        mapping.append(list(group))
    for fine_node in hg.nodes:
        if fine_node.is_cell:
            continue
        node = coarse.add_node(fine_node.name, fine_node.kind)
        fine_to_coarse[fine_node.index] = node.index
        mapping.append([fine_node.index])

    for net in hg.nets:
        drivers: List[int] = []
        sinks: List[int] = []
        for node_idx, direction, _ in net.pins:
            cidx = fine_to_coarse[node_idx]
            if direction == PIN_OUT:
                drivers.append(cidx)
            else:
                sinks.append(cidx)
        coarse_nodes = set(drivers) | set(sinks)
        if len(coarse_nodes) < 2:
            continue  # internal (or dead) net: vanishes at this level
        cnet = coarse.add_net(net.name)
        seen_out = set()
        seen_in = set()
        for cidx in drivers:
            if cidx not in seen_out:
                seen_out.add(cidx)
                coarse.connect_output(coarse.nodes[cidx], cnet)
        for cidx in sinks:
            if cidx in seen_in or cidx in seen_out:
                continue
            seen_in.add(cidx)
            coarse.connect_input(coarse.nodes[cidx], cnet)
    # Coarse super-cells carry no functional structure; give every output a
    # full support so the structure stays check()-clean.
    for node in coarse.nodes:
        if node.is_cell:
            node.supports = [
                tuple(range(node.n_inputs)) for _ in node.output_nets
            ]
            if not node.output_nets:
                # A group may drive only internal nets; add a dead stub so
                # the node remains a legal cell.
                stub = coarse.add_net(f"__stub:{node.name}")
                coarse.connect_output(node, stub)
                node.supports = [tuple(range(node.n_inputs))]
    return coarse, mapping


def multilevel_bipartition(
    hg: Hypergraph,
    config: Optional[MultilevelConfig] = None,
) -> MultilevelResult:
    """Deprecated alias of :func:`repro.partition.multilevel.vcycle_bipartition`."""
    warnings.warn(
        "repro.partition.clustering.multilevel_bipartition is deprecated; "
        "use repro.partition.multilevel.vcycle_bipartition (the CSR "
        "multilevel engine)",
        DeprecationWarning,
        stacklevel=2,
    )
    return vcycle_bipartition(hg, config)


def _legacy_multilevel_bipartition(
    hg: Hypergraph,
    config: Optional[MultilevelConfig] = None,
) -> MultilevelResult:
    """The original object-graph V-cycle, kept as the parity reference."""
    config = config or MultilevelConfig()
    rng = random.Random(config.seed)

    levels: List[Tuple[Hypergraph, List[List[int]]]] = []
    current = hg
    for _ in range(config.max_levels):
        if current.n_cells <= config.min_nodes:
            break
        coarse, mapping = coarsen_once(current, rng)
        if coarse.n_cells >= current.n_cells * config.coarsening_stall_ratio:
            break
        levels.append((coarse, mapping))
        current = coarse

    # Initial solution at the coarsest level.
    result = fm_bipartition(
        current,
        FMConfig(
            seed=rng.randrange(1 << 30),
            balance_tolerance=config.balance_tolerance,
            max_passes=config.max_passes,
        ),
    )
    assignment = result.assignment

    # Uncoarsen with per-level FM refinement.
    for coarse, mapping in reversed(levels):
        fine_hg = _fine_of(levels, coarse, hg)
        fine_assignment = [0] * len(fine_hg.nodes)
        for cidx, fines in enumerate(mapping):
            for fidx in fines:
                fine_assignment[fidx] = assignment[cidx]
        refined = fm_bipartition(
            fine_hg,
            FMConfig(
                seed=rng.randrange(1 << 30),
                balance_tolerance=config.balance_tolerance,
                max_passes=config.max_passes,
            ),
            initial=fine_assignment,
        )
        assignment = refined.assignment

    final = fm_bipartition(
        hg,
        FMConfig(
            seed=rng.randrange(1 << 30),
            balance_tolerance=config.balance_tolerance,
            max_passes=config.max_passes,
        ),
        initial=assignment,
    )
    assignment = final.assignment
    replication: Optional[ReplicationResult] = None
    if config.replication_refine:
        engine = ReplicationEngine(
            hg,
            ReplicationConfig(
                seed=rng.randrange(1 << 30),
                threshold=config.threshold,
                style=FUNCTIONAL,
                balance_tolerance=config.balance_tolerance,
                max_passes=config.max_passes,
                warm_start_moves_only=False,
            ),
            initial=assignment,
        )
        replication = engine.run()

    return MultilevelResult(
        assignment=assignment,
        cut_size=final.cut_size,
        levels=len(levels) + 1,
        replication=replication,
    )


def _fine_of(
    levels: List[Tuple[Hypergraph, List[List[int]]]],
    coarse: Hypergraph,
    original: Hypergraph,
) -> Hypergraph:
    """The hypergraph one level finer than ``coarse``."""
    for i, (level_hg, _) in enumerate(levels):
        if level_hg is coarse:
            return levels[i - 1][0] if i > 0 else original
    raise ValueError("level not found")
