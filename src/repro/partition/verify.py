"""Independent verification of k-way solutions.

The partitioner's bookkeeping is intricate (instances, replication across
carve levels, global terminal accounting), so this module re-derives every
solution-level claim from first principles -- the instance pin lists and
the original mapped netlist -- and reports violations.  It checks:

* **coverage** -- every original cell has at least one instance;
* **single driver** -- every output net of every original cell is driven by
  exactly one instance across the whole solution (functional replication
  assigns each output to exactly one side);
* **support closure** -- each instance's input set is a union of supports of
  the outputs it drives (no phantom pins, no missing pins);
* **net presence** -- each block's net set equals the union of its
  instances' pins and its pads' nets;
* **drivers exist** -- every net read somewhere is driven by an instance or
  a primary-input pad somewhere;
* **terminal rule** -- block terminal counts match the paper's IOB rule
  (one IOB per net that crosses blocks or carries a local pad);
* **capacity** -- a solution claiming feasibility satisfies every device's
  CLB window and terminal limit;
* **pads** -- every primary input that drives logic and every primary
  output pad is placed exactly once.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set

from repro.partition.kway import KWaySolution
from repro.robust.errors import VerificationError
from repro.techmap.mapped import MappedNetlist


def verify_solution(
    mapped: MappedNetlist,
    solution: KWaySolution,
    raise_on_violation: bool = False,
) -> List[str]:
    """Return a list of violation descriptions (empty = solution verified).

    With ``raise_on_violation=True`` a non-empty list raises
    :class:`~repro.robust.errors.VerificationError` carrying the full
    violation list, which is how
    :class:`~repro.robust.runner.ResilientRunner` uses this checker as a
    post-run gate (reject-and-retry on corrupt solutions).
    """
    problems: List[str] = []
    cell_by_name = {cell.name: cell for cell in mapped.cells}

    # ---- coverage and single-driver ------------------------------------
    instance_count: Dict[str, int] = defaultdict(int)
    output_drivers: Dict[str, int] = defaultdict(int)
    for block in solution.blocks:
        if not (
            len(block.cells)
            == len(block.originals)
            == len(block.cell_inputs)
            == len(block.cell_outputs)
        ):
            problems.append(f"block {block.index}: ragged instance arrays")
            continue
        for orig, outputs in zip(block.originals, block.cell_outputs):
            instance_count[orig] += 1
            for net in outputs:
                output_drivers[net] += 1
    for cell in mapped.cells:
        if instance_count.get(cell.name, 0) < 1:
            problems.append(f"cell {cell.name} has no instance in any block")
    for cell in mapped.cells:
        for net in cell.outputs:
            drivers = output_drivers.get(net, 0)
            if drivers != 1:
                problems.append(
                    f"output net {net!r} of {cell.name} driven by {drivers} instances"
                )

    # ---- support closure ------------------------------------------------
    live = set(mapped.nets())
    for block in solution.blocks:
        for orig, inputs, outputs in zip(
            block.originals, block.cell_inputs, block.cell_outputs
        ):
            cell = cell_by_name.get(orig)
            if cell is None:
                problems.append(f"block {block.index}: unknown original {orig!r}")
                continue
            owned = set(outputs)
            expected: Set[str] = set()
            for oi, net in enumerate(cell.outputs):
                if net in owned:
                    expected.update(cell.supports[oi])
            got = set(inputs)
            if not got <= set(cell.inputs):
                problems.append(
                    f"instance of {orig} in block {block.index} has phantom inputs"
                )
            missing = expected - got
            # A support net may legitimately be absent when it was dead in
            # the mapped netlist (no live net); anything else is a bug.
            missing = {m for m in missing if m in live}
            if missing:
                problems.append(
                    f"instance of {orig} in block {block.index} misses inputs {sorted(missing)[:3]}"
                )
            extra = got - expected
            if extra:
                problems.append(
                    f"instance of {orig} in block {block.index} carries unneeded inputs {sorted(extra)[:3]}"
                )

    # ---- net presence and drivers ----------------------------------------
    live_nets = mapped.nets()
    for block in solution.blocks:
        derived: Set[str] = set(block.pad_nets)
        for inputs in block.cell_inputs:
            derived.update(inputs)
        for outputs in block.cell_outputs:
            derived.update(outputs)
        if derived != block.nets:
            problems.append(
                f"block {block.index}: net presence mismatch "
                f"(+{len(block.nets - derived)}/-{len(derived - block.nets)})"
            )
    read_nets: Set[str] = set()
    driven: Set[str] = set(output_drivers)
    pi_pads = set()
    for block in solution.blocks:
        for inputs in block.cell_inputs:
            read_nets.update(inputs)
        for pad in block.pads:
            if pad.startswith("pi:"):
                pi_pads.add(pad[3:])
    for net in read_nets:
        if net not in driven and net not in pi_pads:
            problems.append(f"net {net!r} is read but driven nowhere")

    # ---- terminal rule ----------------------------------------------------
    net_blocks: Dict[str, Set[int]] = defaultdict(set)
    for block in solution.blocks:
        for net in block.nets:
            net_blocks[net].add(block.index)
    for block in solution.blocks:
        expect = sum(
            1
            for net in block.nets
            if len(net_blocks[net]) > 1 or net in block.pad_nets
        )
        if block.terminals != expect:
            problems.append(
                f"block {block.index}: terminals {block.terminals} != expected {expect}"
            )

    # ---- capacity -----------------------------------------------------------
    if solution.feasible:
        for block in solution.blocks:
            if not block.device.fits(block.n_clbs, block.terminals):
                problems.append(
                    f"block {block.index} claims feasibility but violates "
                    f"{block.device.name} limits "
                    f"({block.n_clbs} CLBs, {block.terminals} IOBs)"
                )

    # ---- pads -----------------------------------------------------------------
    pad_placements: Dict[str, int] = defaultdict(int)
    for block in solution.blocks:
        for pad in block.pads:
            pad_placements[pad] += 1
    for pad, count in pad_placements.items():
        if count != 1:
            problems.append(f"pad {pad!r} placed {count} times")
    for po in mapped.primary_outputs:
        if pad_placements.get(f"po:{po}", 0) != 1:
            problems.append(f"primary output pad po:{po} not placed exactly once")
    for pi in mapped.primary_inputs:
        if pi in live_nets and pad_placements.get(f"pi:{pi}", 0) != 1:
            problems.append(f"primary input pad pi:{pi} not placed exactly once")

    if problems and raise_on_violation:
        raise VerificationError(problems, circuit=solution.name)
    return problems
