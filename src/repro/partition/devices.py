"""The heterogeneous FPGA device library (paper Table I).

Each device D_i = (c_i, t_i, d_i, l_i, u_i): CLB capacity, terminal (IOB)
count, unit price, and lower/upper bounds on CLB utilization.  A partition
P_j is *feasible* for device D_i when::

    l_i * c_i <= clbs(P_j) <= u_i * c_i     and     terminals(P_j) <= t_i

The bundled :data:`XC3000_LIBRARY` uses the Xilinx XC3000 capacities and IOB
counts from the data book; the prices and utilization bounds of the paper's
Table I are unreadable in the available scan, so the library ships with
reconstructed prices that preserve the economically relevant property the
paper relies on (unit cost d_i/c_i strictly decreasing with device size) and
the utilization window consistent with the reported 72-85% average CLB
utilizations.  EXPERIMENTS.md records this reconstruction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.robust.errors import ConfigError


@dataclass(frozen=True)
class Device:
    """One FPGA device type D_i = (c, t, d, l, u)."""

    name: str
    clbs: int  # c_i: CLB capacity
    terminals: int  # t_i: IOB count
    price: float  # d_i: unit price
    util_lower: float = 0.0  # l_i
    util_upper: float = 1.0  # u_i

    def __post_init__(self) -> None:
        if self.clbs <= 0 or self.terminals <= 0:
            raise ConfigError(f"device {self.name!r}: capacity fields must be positive")
        if self.price < 0:
            raise ConfigError(f"device {self.name!r}: price must be non-negative")
        if not 0.0 <= self.util_lower <= self.util_upper <= 1.0:
            raise ConfigError(f"device {self.name!r}: need 0 <= l <= u <= 1")

    @property
    def cost_per_clb(self) -> float:
        return self.price / self.clbs

    @property
    def min_clbs(self) -> int:
        """Smallest CLB count satisfying the lower utilization bound."""
        return int(math.ceil(self.util_lower * self.clbs))

    @property
    def max_clbs(self) -> int:
        """Largest CLB count satisfying the upper utilization bound."""
        return int(math.floor(self.util_upper * self.clbs))

    def fits(self, clbs: int, terminals: int) -> bool:
        """Feasibility test for a partition of ``clbs`` CLBs / ``terminals`` IOBs."""
        return self.min_clbs <= clbs <= self.max_clbs and terminals <= self.terminals


class DeviceLibrary:
    """An ordered collection of device types."""

    def __init__(self, devices: Sequence[Device], name: str = "library") -> None:
        if not devices:
            raise ConfigError("device library cannot be empty")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate device names in library")
        self.name = name
        self.devices: List[Device] = sorted(devices, key=lambda d: d.clbs)

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices)

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, name: str) -> Device:
        for dev in self.devices:
            if dev.name == name:
                return dev
        raise KeyError(f"no device named {name!r}")

    @property
    def largest(self) -> Device:
        return self.devices[-1]

    @property
    def smallest(self) -> Device:
        return self.devices[0]

    def feasible_devices(self, clbs: int, terminals: int) -> List[Device]:
        """All devices that can host a (clbs, terminals) partition, cheap first."""
        fits = [d for d in self.devices if d.fits(clbs, terminals)]
        return sorted(fits, key=lambda d: d.price)

    def cheapest_fit(self, clbs: int, terminals: int) -> Optional[Device]:
        """Cheapest feasible device, or None."""
        fits = self.feasible_devices(clbs, terminals)
        return fits[0] if fits else None

    def lower_bound_cost(self, clbs: int) -> float:
        """A simple cost lower bound for hosting ``clbs`` CLBs.

        The best achievable price is bounded by filling the most economical
        device to its utilization ceiling; used to prune k-way search.
        """
        best_rate = min(d.price / d.max_clbs for d in self.devices if d.max_clbs > 0)
        return best_rate * clbs


def _xc3000(name: str, clbs: int, terminals: int, price: float) -> Device:
    return Device(
        name=name,
        clbs=clbs,
        terminals=terminals,
        price=price,
        util_lower=0.0,
        util_upper=0.95,
    )


#: The paper's Table I device set: the five XC3000 family members, with CLB
#: and IOB capacities from the Xilinx data book.  Prices are reconstructed
#: (see module docstring) with strictly decreasing cost per CLB, normalized
#: so the smallest device costs 100 units.
XC3000_LIBRARY = DeviceLibrary(
    [
        _xc3000("XC3020", 64, 64, 100.0),
        _xc3000("XC3030", 100, 80, 145.0),
        _xc3000("XC3042", 144, 96, 195.0),
        _xc3000("XC3064", 224, 120, 280.0),
        _xc3000("XC3090", 320, 144, 370.0),
    ],
    name="XC3000",
)

#: The contemporary successor family (XC4000), usable as a drop-in library:
#: the formulation is library-agnostic, and partitioning the same circuit
#: against a different (capacity, terminal, price) curve is a natural study
#: the paper's model supports.  Capacities/IOBs from the XC4000 data book;
#: prices reconstructed on the same decreasing-cost-per-CLB principle.
XC4000_LIBRARY = DeviceLibrary(
    [
        _xc3000("XC4002", 64, 64, 90.0),
        _xc3000("XC4003", 100, 80, 130.0),
        _xc3000("XC4005", 196, 112, 230.0),
        _xc3000("XC4008", 324, 144, 350.0),
        _xc3000("XC4010", 400, 160, 415.0),
    ],
    name="XC4000",
)
