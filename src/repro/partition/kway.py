"""Multi-way partitioning into heterogeneous FPGA devices.

Reconstruction of the recursive flow of Kuznar-Brglez-Kozminski (DAC'93,
the paper's reference [3]) with the DAC'94 replication-aware bipartitioner
inside: repeatedly *carve* a device-feasible block off the remaining
circuit with a size-bounded (replication-aware) FM bipartition, choosing at
every step the (device, partition) pair that minimizes estimated total cost
with the smallest interconnect, until the remainder fits a single device.

Replication is handled across carve levels: when a bipartition leaves a
cell replicated, the carved block receives one instance and the remainder
keeps the *other* instance as a first-class (possibly reduced) cell, which
may be replicated again later.  The final solution reports, per block, the
device, the CLB instances and the terminal (IOB) usage computed with the
global rule of :func:`repro.hypergraph.metrics.partition_terminal_counts`:
a block needs one IOB per net that touches it and either spans another
block or carries one of the block's I/O pads.

Feasibility (paper's definition): block j on device D_i requires
``l_i * c_i <= clbs_j <= u_i * c_i`` and ``terminals_j <= t_i``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.hypergraph.hypergraph import Hypergraph, NodeKind
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_SPAN
from repro.partition.cost import SolutionCost, solution_cost
from repro.partition.devices import Device, DeviceLibrary, XC3000_LIBRARY
from repro.hypergraph.compact import CompactHypergraph
from repro.partition.fm_replication import (
    FUNCTIONAL,
    NONE,
    ReplicationConfig,
    ReplicationEngine,
    ReplicationTables,
)
from repro.partition.multilevel import (
    MULTILEVEL_AUTO_MIN_CELLS,
    MultilevelConfig,
    MultilevelHierarchy,
)
from repro.robust import faults
from repro.robust.budget import Budget
from repro.robust.errors import ConfigError, InfeasibleError
from repro.techmap.mapped import MappedNetlist

#: Threshold value disabling replication entirely (the "[3]" baseline).
T_OFF = float("inf")


@dataclass(slots=True)
class _VCell:
    """A (possibly reduced) cell instance during recursive carving."""

    name: str
    original: str
    inputs: List[str]
    outputs: List[str]
    supports: List[Tuple[int, ...]]


@dataclass(slots=True)
class _VTerm:
    """An I/O pad during recursive carving."""

    name: str
    net: str
    kind: str  # "pi" | "po"


@dataclass
class BlockResult:
    """One partition P_j of the final solution.

    ``cell_inputs`` / ``cell_outputs`` record, per instance (parallel to
    ``cells``), the nets its active input and output pins touch; the
    independent checker in :mod:`repro.partition.verify` re-derives every
    solution-level quantity from them.
    """

    index: int
    device: Device
    cells: List[str]  # instance names
    originals: List[str]  # original cell names (parallel to ``cells``)
    pads: List[str]
    nets: Set[str]
    pad_nets: Set[str]
    cell_inputs: List[List[str]] = field(default_factory=list)
    cell_outputs: List[List[str]] = field(default_factory=list)
    terminals: int = 0  # filled in by the global terminal accounting

    @property
    def n_clbs(self) -> int:
        return len(self.cells)


@dataclass
class KWayConfig:
    """Knobs for the multi-way flow."""

    library: DeviceLibrary = field(default_factory=lambda: XC3000_LIBRARY)
    threshold: Union[int, float] = 1  # paper's T; T_OFF reproduces [3]
    style: str = FUNCTIONAL
    seed: int = 0
    seeds_per_carve: int = 3
    devices_per_carve: int = 3
    max_passes: int = 12
    max_blocks: int = 200
    #: Fill-level ladder for carves: each carve first tries to pack the
    #: candidate device to the highest band (fewest, cheapest devices); if no
    #: band yields a terminal-feasible block, lower bands are tried.  This
    #: plays the role of the lower utilization bound l_i of the paper's
    #: device model during search.
    carve_fill_levels: Tuple[float, ...] = (0.85, 0.65, 0.45, 0.25)
    #: Optional wall-clock budget.  A *graceful* budget (the default)
    #: makes the carve loop stop at its next checkpoint and dump the
    #: remaining circuit into one best-effort final block, yielding a
    #: structurally valid (``truncated``, possibly infeasible) solution;
    #: a strict budget raises ``SolverTimeoutError`` there instead.
    budget: Optional[Budget] = None
    #: Bipartitioning engine: ``"fast"`` (the CSR/bucket engines) or
    #: ``"reference"`` (the pre-optimization engines preserved in
    #: :mod:`repro.partition.reference`).  The reference path exists for
    #: the benchmark harness's same-process baseline and for equivalence
    #: tests; both produce identical solutions for a given seed.
    engine: str = "fast"
    #: Process fan-out of the carve candidate scan: each fill band's
    #: ``devices_per_carve x seeds_per_carve`` candidate runs are mapped
    #: over a worker pool and reduced in sequential order, so the chosen
    #: carve matches ``jobs=1`` for a given seed.  ``1`` stays in-process;
    #: ``0`` or negative means all cores.
    jobs: int = 1
    #: Multilevel initial solutions for carve candidates: a V-cycle
    #: (:mod:`repro.partition.multilevel`) seeds each candidate's
    #: replication engine instead of a random start.  Tri-state: ``True``
    #: forces it on, ``False`` off, ``None`` (default) turns it on per
    #: carve level once the working set reaches ``multilevel_min_cells``.
    #: The coarsening hierarchy is built once per carve scan and shared
    #: across every candidate (like ``ReplicationTables``).
    multilevel: Optional[bool] = None
    multilevel_min_cells: int = MULTILEVEL_AUTO_MIN_CELLS

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "reference"):
            raise ConfigError(f"unknown k-way engine {self.engine!r}")

    @property
    def replication_enabled(self) -> bool:
        return self.style != NONE and self.threshold != T_OFF


@dataclass
class KWaySolution:
    """Final multi-way solution."""

    name: str
    blocks: List[BlockResult]
    cost: SolutionCost
    n_original_cells: int
    replicated_cells: Set[str]
    feasible: bool
    #: True when a wall-clock budget expired mid-search and the remaining
    #: circuit was dumped into one best-effort final block.
    truncated: bool = False

    @property
    def k(self) -> int:
        return len(self.blocks)

    @property
    def n_instances(self) -> int:
        return sum(b.n_clbs for b in self.blocks)

    @property
    def replicated_fraction(self) -> float:
        if not self.n_original_cells:
            return 0.0
        return len(self.replicated_cells) / self.n_original_cells

    def summary(self) -> Dict[str, object]:
        data = self.cost.summary()
        data.update(
            {
                "circuit": self.name,
                "replicated_%": round(100 * self.replicated_fraction, 2),
                "instances": self.n_instances,
                "cells": self.n_original_cells,
                "truncated": self.truncated,
            }
        )
        return data


# ---------------------------------------------------------------------------
# Working-set construction
# ---------------------------------------------------------------------------


def _initial_state(mapped: MappedNetlist) -> Tuple[List[_VCell], List[_VTerm]]:
    live_nets = set(mapped.nets())
    cells = []
    for cell in mapped.cells:
        # Keep only live input nets; translate the mapped cell's name-based
        # supports into pin indices over the filtered input list.
        inputs = [net for net in cell.inputs if net in live_nets]
        index_of = {net: i for i, net in enumerate(inputs)}
        cells.append(
            _VCell(
                name=cell.name,
                original=cell.name,
                inputs=inputs,
                outputs=list(cell.outputs),
                supports=[
                    tuple(index_of[s] for s in sup if s in index_of)
                    for sup in cell.supports
                ],
            )
        )
    terms: List[_VTerm] = []
    for pi in mapped.primary_inputs:
        if pi in live_nets:
            terms.append(_VTerm(name=f"pi:{pi}", net=pi, kind="pi"))
    for po in mapped.primary_outputs:
        terms.append(_VTerm(name=f"po:{po}", net=po, kind="po"))
    return cells, terms


def _build_hg(
    cells: Sequence[_VCell],
    terms: Sequence[_VTerm],
    external_nets: Set[str],
) -> Tuple[Hypergraph, Dict[int, int], Set[int]]:
    """Hypergraph over the working set.

    Returns ``(hg, fixed, pseudo_nodes)``: every external net (one already
    touching a carved block) gets a pseudo terminal pinned to side 1 (the
    remainder) so the carve's cut objective counts it when the carved side
    touches it.
    """
    hg = Hypergraph("carve")
    net_obj: Dict[str, object] = {}

    def net_of(name: str):
        if name not in net_obj:
            net_obj[name] = hg.add_net(name)
        return net_obj[name]

    for cell in cells:
        node = hg.add_node(cell.name, NodeKind.CELL)
        for net in cell.inputs:
            hg.connect_input(node, net_of(net))
        for net in cell.outputs:
            hg.connect_output(node, net_of(net))
        node.supports = [tuple(sup) for sup in cell.supports]
    for term in terms:
        node = hg.add_node(term.name, NodeKind.PI if term.kind == "pi" else NodeKind.PO)
        if term.kind == "pi":
            hg.connect_output(node, net_of(term.net))
        else:
            hg.connect_input(node, net_of(term.net))

    fixed: Dict[int, int] = {}
    pseudo: Set[int] = set()
    present = set(net_obj)
    for net_name in sorted(external_nets & present):
        node = hg.add_node(f"ext:{net_name}", NodeKind.PO)
        hg.connect_input(node, net_obj[net_name])
        fixed[node.index] = 1
        pseudo.add(node.index)
    return hg, fixed, pseudo


# ---------------------------------------------------------------------------
# Carve evaluation
# ---------------------------------------------------------------------------


def _net_pads_side0(
    hg: Hypergraph, engine: ReplicationEngine, pseudo: Set[int]
) -> Set[int]:
    """Nets that carry a real I/O pad assigned to side 0."""
    result: Set[int] = set()
    for node in hg.nodes:
        if node.is_cell or node.index in pseudo:
            continue
        if engine.side[node.index] != 0:
            continue
        for net in list(node.input_nets) + list(node.output_nets):
            result.add(net)
    return result


def _carve_terminals(
    hg: Hypergraph, engine: ReplicationEngine, pseudo: Set[int]
) -> int:
    """Terminal (IOB) demand of side 0 in the current engine state."""
    pad_nets = _net_pads_side0(hg, engine, pseudo)
    t0 = 0
    for net in range(len(hg.nets)):
        c0, c1 = engine.counts[net]
        if c0 <= 0:
            continue
        if c1 > 0 or net in pad_nets:
            t0 += 1
    return t0


#: Side-instance tags (see :func:`_side_instances`).
_WHOLE = "whole"
_ORIGINAL = "orig"
_REPLICA = "repl"


def _side_instances_of(
    hg: Hypergraph,
    sides: Sequence[int],
    reps: Sequence[Optional[Tuple[int, int]]],
    side: int,
) -> List[Tuple[int, str, int]]:
    """Cell instances on ``side`` as ``(node, kind, output)``.

    ``kind`` is ``"whole"`` for an unreplicated cell (``output`` unused),
    ``"repl"`` for the replica instance owning ``output``, and ``"orig"``
    for the original instance of a functional replication, which keeps the
    outputs *other than* ``output``.
    """
    out: List[Tuple[int, str, int]] = []
    for v in range(len(sides)):
        if not hg.nodes[v].is_cell:
            continue
        r = reps[v]
        if r is None:
            if sides[v] == side:
                out.append((v, _WHOLE, -1))
        else:
            s, o = r
            if s == side:
                out.append((v, _ORIGINAL, o))
            if 1 - s == side:
                out.append((v, _REPLICA, o))
    return out


def _side_instances(
    engine: ReplicationEngine, side: int
) -> List[Tuple[int, str, int]]:
    """Engine-state view of :func:`_side_instances_of`."""
    return _side_instances_of(engine.hg, engine.side, engine.rep, side)


@dataclass(slots=True)
class _CarveOutcome:
    """Lightweight record of one finished carve candidate.

    Everything the carve reduction and commit need, without keeping (or
    pickling, in the parallel scan) the whole engine: the final
    side/replication state plus the evaluation metrics.
    """

    device_index: int
    sides: List[int]
    reps: List[Optional[Tuple[int, int]]]
    clbs0: int
    n_rep: int
    t0: int
    cut: int


def _engine_outcome(
    engine, pseudo: Set[int], device_index: int
) -> Optional[_CarveOutcome]:
    """Evaluate a finished candidate engine; ``None`` when it made no
    progress (empty or replication-only side 0)."""
    clbs0 = len(_side_instances(engine, 0))
    n_rep = len(engine.replicas())
    if clbs0 == 0 or clbs0 <= n_rep:
        return None
    t0 = _carve_terminals(engine.hg, engine, pseudo)
    return _CarveOutcome(
        device_index=device_index,
        sides=list(engine.side),
        reps=list(engine.rep),
        clbs0=clbs0,
        n_rep=n_rep,
        t0=t0,
        cut=engine.cut_size(),
    )


def _instance_vcell(vc: _VCell, kind: str, o: int, counter: int) -> _VCell:
    """Materialize one instance of ``vc`` per the side-instance tag."""
    if kind == _WHOLE:
        return vc  # whole cell, unchanged
    if kind == _REPLICA:
        # Replica: keeps output ``o`` and exactly its support.
        keep_pins = sorted(set(vc.supports[o]))
        remap = {old: new for new, old in enumerate(keep_pins)}
        return _VCell(
            name=f"{vc.name}~r{counter}",
            original=vc.original,
            inputs=[vc.inputs[p] for p in keep_pins],
            outputs=[vc.outputs[o]],
            supports=[tuple(remap[p] for p in vc.supports[o])],
        )
    # Original of a functional replication: keeps outputs != o.
    kept_outputs = [j for j in range(len(vc.outputs)) if j != o]
    keep_pins = sorted({p for j in kept_outputs for p in vc.supports[j]})
    remap = {old: new for new, old in enumerate(keep_pins)}
    return _VCell(
        name=f"{vc.name}~o{counter}",
        original=vc.original,
        inputs=[vc.inputs[p] for p in keep_pins],
        outputs=[vc.outputs[j] for j in kept_outputs],
        supports=[
            tuple(remap[p] for p in vc.supports[j]) for j in kept_outputs
        ],
    )


def _candidate_devices(
    library: DeviceLibrary, clbs: int, limit: int
) -> List[Device]:
    """Devices worth trying for a carve, most economical first."""
    usable = [
        d
        for d in library.devices
        if d.max_clbs >= 1 and max(1, d.min_clbs) <= min(d.max_clbs, clbs - 1)
    ]
    usable.sort(key=lambda d: (d.price / max(1, min(d.max_clbs, clbs - 1)), d.price))
    return usable[: max(1, limit)]


def _scan_carve_candidates(
    hg: Hypergraph,
    fixed: Dict[int, int],
    pseudo: Set[int],
    candidates: List[Device],
    clbs: int,
    config: "KWayConfig",
    rng: random.Random,
) -> Tuple[Optional[Tuple[Device, _CarveOutcome]], bool]:
    """Scan the fill-band ladder for the best carve candidate.

    Runs ``devices_per_carve x seeds_per_carve`` candidate bipartitions
    per fill band -- in-process for ``jobs=1``, over a
    :class:`~repro.perf.parallel.CarveBandPool` otherwise -- and reduces
    them in sequential scan order, so the chosen carve is identical for
    any job count given the same seed.  Returns ``((device, outcome) or
    None, out_of_time)``; the first band producing a feasible candidate
    wins and lower bands are not evaluated.
    """
    budget = config.budget
    library = config.library
    best: Optional[Tuple[Tuple, Device, _CarveOutcome]] = None
    fallback: Optional[Tuple[Tuple, Device, _CarveOutcome]] = None
    out_of_time = False
    reg = get_registry()
    n_bands = 0
    n_cand = 0

    def consider(outcome: Optional[_CarveOutcome]) -> None:
        nonlocal best, fallback
        if outcome is None:  # no-progress guard
            return
        device = candidates[outcome.device_index]
        remaining_clbs = clbs + outcome.n_rep - outcome.clbs0
        est_cost = device.price + library.lower_bound_cost(remaining_clbs)
        key = (est_cost, outcome.t0, outcome.cut)
        if device.fits(outcome.clbs0, outcome.t0):
            if best is None or key < best[0]:
                best = (key, device, outcome)
        else:
            violation = (
                max(0, outcome.t0 - device.terminals)
                + max(0, device.min_clbs - outcome.clbs0)
                + max(0, outcome.clbs0 - device.max_clbs)
            )
            fb_key = (violation,) + key
            if fallback is None or fb_key < fallback[0]:
                fallback = (fb_key, device, outcome)

    use_reference = config.engine == "reference"
    if config.multilevel is not None:
        use_ml = config.multilevel and not use_reference
    else:
        use_ml = not use_reference and clbs >= config.multilevel_min_cells
    if use_ml and reg.enabled:
        reg.counter("kway.multilevel_scans").inc()
    if config.jobs != 1 and not use_reference:
        from repro.perf.parallel import CarveBandPool

        proto = dict(
            threshold=config.threshold,
            style=config.style,
            max_passes=config.max_passes,
            fixed=dict(fixed),
        )
        ml_spec = (
            dict(seed=config.seed, max_passes=config.max_passes)
            if use_ml
            else None
        )
        with CarveBandPool(
            hg, pseudo, proto, budget, config.jobs, ml_spec=ml_spec
        ) as pool:
            for fill in config.carve_fill_levels:
                if budget is not None and budget.expired:
                    out_of_time = True
                    break
                plan: List[Tuple[int, int, int, int]] = []
                for di, device in enumerate(candidates):
                    hi0 = min(device.max_clbs, clbs - 1)
                    lo0 = max(1, device.min_clbs, int(fill * hi0))
                    if lo0 > hi0:
                        continue
                    for _ in range(config.seeds_per_carve):
                        plan.append((di, rng.randrange(1 << 30), lo0, hi0))
                n_bands += 1
                n_cand += len(plan)
                for outcome in pool.evaluate(plan):
                    consider(outcome)
                if best is not None:
                    break  # highest workable fill band wins
    else:
        tables: Optional[ReplicationTables] = None
        hierarchy: Optional[MultilevelHierarchy] = None
        for fill in config.carve_fill_levels:
            n_bands += 1
            for di, device in enumerate(candidates):
                hi0 = min(device.max_clbs, clbs - 1)
                lo0 = max(1, device.min_clbs, int(fill * hi0))
                if lo0 > hi0:
                    continue
                for _ in range(config.seeds_per_carve):
                    if budget is not None and budget.expired:
                        out_of_time = True
                        break
                    cand_seed = rng.randrange(1 << 30)
                    rcfg = ReplicationConfig(
                        seed=cand_seed,
                        threshold=config.threshold,
                        style=config.style,
                        side0_bounds=(lo0, hi0),
                        max_passes=config.max_passes,
                        fixed=dict(fixed),
                        budget=budget,
                    )
                    initial: Optional[List[int]] = None
                    if use_ml and not use_reference:
                        if hierarchy is None:
                            hierarchy = MultilevelHierarchy(
                                CompactHypergraph.from_hypergraph(hg),
                                MultilevelConfig(
                                    seed=config.seed,
                                    max_passes=config.max_passes,
                                    fixed=dict(fixed),
                                    budget=budget,
                                ),
                            )
                        initial, _, _ = hierarchy.solve(
                            cand_seed, side0_bounds=(lo0, hi0)
                        )
                    if use_reference:
                        from repro.partition.reference import (
                            ReferenceReplicationEngine,
                        )

                        engine = ReferenceReplicationEngine(hg, rcfg)
                    else:
                        if tables is None:
                            tables = ReplicationTables(hg)
                        engine = ReplicationEngine(
                            hg, rcfg, initial=initial, tables=tables
                        )
                    engine.run()
                    n_cand += 1
                    consider(_engine_outcome(engine, pseudo, di))
                if out_of_time:
                    break
            if best is not None or out_of_time:
                break  # highest workable fill band wins
    if reg.enabled:
        reg.counter("kway.fill_bands").inc(n_bands)
        reg.counter("kway.candidates").inc(n_cand)
    chosen = best or fallback
    if chosen is None:
        return None, out_of_time
    return (chosen[1], chosen[2]), out_of_time


# ---------------------------------------------------------------------------
# Main driver
# ---------------------------------------------------------------------------


def partition_heterogeneous(
    mapped: MappedNetlist,
    config: Optional[KWayConfig] = None,
) -> KWaySolution:
    """Partition a mapped netlist into heterogeneous devices (eqs. 1-2)."""
    config = config or KWayConfig()
    reg = get_registry()
    if reg.enabled:
        with reg.span(
            "kway.partition",
            circuit=mapped.name,
            style=config.style,
            threshold=str(config.threshold),
            seed=config.seed,
        ):
            return _partition_heterogeneous(mapped, config, reg)
    return _partition_heterogeneous(mapped, config, None)


def _partition_heterogeneous(
    mapped: MappedNetlist,
    config: KWayConfig,
    reg,
) -> KWaySolution:
    library = config.library
    rng = random.Random(config.seed)

    cells, terms = _initial_state(mapped)
    n_original = len(cells)
    blocks: List[BlockResult] = []
    carved_nets: Set[str] = set()
    instance_counter = 0
    budget = config.budget
    truncated = False

    while True:
        faults.maybe_fire("kway.carve", index=len(blocks), style=config.style)
        if len(blocks) >= config.max_blocks:
            raise InfeasibleError(
                "block limit exceeded; circuit cannot be carved"
            )
        exhausted = budget is not None and budget.expired
        if exhausted:
            # Strict budgets raise here; graceful ones fall through and
            # dump the remainder into one best-effort final block.
            budget.check("k-way carve loop")
        clbs = len(cells)
        present_nets: Set[str] = set()
        pad_nets: Set[str] = {t.net for t in terms}
        for cell in cells:
            present_nets.update(cell.inputs)
            present_nets.update(cell.outputs)
        present_nets.update(pad_nets)
        t_all = sum(
            1 for net in present_nets if net in carved_nets or net in pad_nets
        )
        final_dev = library.cheapest_fit(clbs, t_all)
        if final_dev is not None or clbs <= 1 or exhausted:
            if final_dev is None:
                # Only an expired budget forces this exit with > 1 CLB left.
                truncated = truncated or (exhausted and clbs > 1)
                final_dev = library.largest  # best effort; marked infeasible
            blocks.append(
                BlockResult(
                    index=len(blocks),
                    device=final_dev,
                    cells=[c.name for c in cells],
                    originals=[c.original for c in cells],
                    pads=[t.name for t in terms],
                    nets=set(present_nets),
                    pad_nets=set(pad_nets),
                    cell_inputs=[list(c.inputs) for c in cells],
                    cell_outputs=[list(c.outputs) for c in cells],
                )
            )
            if reg is not None:
                reg.counter("kway.carve_levels").inc()
                reg.emit_event(
                    "kway.final_block",
                    level=len(blocks) - 1,
                    device=final_dev.name,
                    clbs=clbs,
                    truncated=truncated,
                )
            break

        # ---- evaluate carve candidates ---------------------------------
        candidates = _candidate_devices(library, clbs, config.devices_per_carve)
        hg, fixed, pseudo = _build_hg(cells, terms, carved_nets)
        carve_span = (
            reg.span(
                "kway.carve",
                level=len(blocks),
                clbs=clbs,
                candidates=len(candidates),
            )
            if reg is not None
            else NULL_SPAN
        )
        with carve_span:
            chosen_pair = _scan_carve_candidates(
                hg, fixed, pseudo, candidates, clbs, config, rng
            )
        chosen, out_of_time = chosen_pair
        if chosen is None:
            if out_of_time:
                # Expired mid-evaluation with nothing usable: loop back so
                # the exhausted check above finalizes (or raises, when the
                # budget is strict).
                continue
            raise InfeasibleError(
                f"no carve candidate for {clbs} CLBs; library too small"
            )
        device, outcome = chosen

        # ---- commit the carve ------------------------------------------
        name_to_vcell = {c.name: c for c in cells}
        block_cells: List[str] = []
        block_originals: List[str] = []
        block_cell_inputs: List[List[str]] = []
        block_cell_outputs: List[List[str]] = []
        for v, kind, o in _side_instances_of(hg, outcome.sides, outcome.reps, 0):
            inst = _instance_vcell(
                name_to_vcell[hg.nodes[v].name], kind, o, instance_counter
            )
            instance_counter += 1
            block_cells.append(inst.name)
            block_originals.append(inst.original)
            block_cell_inputs.append(list(inst.inputs))
            block_cell_outputs.append(list(inst.outputs))
        new_cells: List[_VCell] = []
        for v, kind, o in _side_instances_of(hg, outcome.sides, outcome.reps, 1):
            inst = _instance_vcell(
                name_to_vcell[hg.nodes[v].name], kind, o, instance_counter
            )
            instance_counter += 1
            new_cells.append(inst)

        term_by_name = {t.name: t for t in terms}
        block_pads: List[str] = []
        block_pad_nets: Set[str] = set()
        new_terms: List[_VTerm] = []
        for node in hg.nodes:
            if node.is_cell or node.index in pseudo:
                continue
            term = term_by_name[node.name]
            if outcome.sides[node.index] == 0:
                block_pads.append(term.name)
                block_pad_nets.add(term.net)
            else:
                new_terms.append(term)

        # Net presence derived from the committed instances' pins + pads:
        # the checker in repro.partition.verify re-derives the same sets.
        block_nets: Set[str] = set(block_pad_nets)
        for nets_list in block_cell_inputs:
            block_nets.update(nets_list)
        for nets_list in block_cell_outputs:
            block_nets.update(nets_list)

        blocks.append(
            BlockResult(
                index=len(blocks),
                device=device,
                cells=block_cells,
                originals=block_originals,
                pads=block_pads,
                nets=block_nets,
                pad_nets=block_pad_nets,
                cell_inputs=block_cell_inputs,
                cell_outputs=block_cell_outputs,
            )
        )
        carved_nets |= block_nets
        cells = new_cells
        terms = new_terms
        if reg is not None:
            reg.counter("kway.carve_levels").inc()
            reg.emit_event(
                "kway.carve_committed",
                level=len(blocks) - 1,
                device=device.name,
                clbs0=outcome.clbs0,
                terminals=outcome.t0,
                cut=outcome.cut,
                replicated=outcome.n_rep,
            )

    return _finalize(mapped.name, blocks, n_original, truncated=truncated)


def _finalize(
    name: str, blocks: List[BlockResult], n_original: int, truncated: bool = False
) -> KWaySolution:
    """Global terminal accounting + objective computation."""
    net_blocks: Dict[str, Set[int]] = {}
    for block in blocks:
        for net in block.nets:
            net_blocks.setdefault(net, set()).add(block.index)
    for block in blocks:
        t = 0
        for net in block.nets:
            if len(net_blocks[net]) > 1 or net in block.pad_nets:
                t += 1
        block.terminals = t

    cost = solution_cost([(b.device, b.n_clbs, b.terminals) for b in blocks])

    # A cell counts as replicated when the solution holds > 1 instance of it.
    counts: Dict[str, int] = {}
    for block in blocks:
        for orig in block.originals:
            counts[orig] = counts.get(orig, 0) + 1
    replicated = {orig for orig, c in counts.items() if c > 1}

    return KWaySolution(
        name=name,
        blocks=blocks,
        cost=cost,
        n_original_cells=n_original,
        replicated_cells=replicated,
        feasible=cost.feasible,
        truncated=truncated,
    )


def best_heterogeneous_partition(
    mapped: MappedNetlist,
    config: Optional[KWayConfig] = None,
    n_solutions: int = 1,
) -> KWaySolution:
    """Run the k-way flow ``n_solutions`` times; keep the best solution.

    "Best" is the lexicographic objective of the paper: lowest total device
    cost (eq. 1), then lowest average IOB utilization (eq. 2); infeasible
    solutions lose to feasible ones.
    """
    config = config or KWayConfig()
    best: Optional[KWaySolution] = None
    for i in range(max(1, n_solutions)):
        if (
            best is not None
            and config.budget is not None
            and config.budget.expired
        ):
            break
        run_cfg = replace(config, seed=config.seed * 9973 + i)
        sol = partition_heterogeneous(mapped, run_cfg)
        if best is None:
            best = sol
            continue
        key = (not sol.feasible,) + sol.cost.objective_key()
        best_key = (not best.feasible,) + best.cost.objective_key()
        if key < best_key:
            best = sol
    assert best is not None
    return best
