"""Classic Fiduccia-Mattheyses bipartitioning (reference [15] of the paper).

This is the replication-free baseline of the paper's first experiment
("F-M min-cut") and the inner engine of the no-replication k-way flow.  The
implementation follows the original algorithm: single-node moves, gain
ordering, one lock per node per pass, best-prefix rollback, and repeated
passes until a pass yields no improvement.

Differences from the textbook presentation, forced by the pin-level model:

* a node may contribute several pins to one net (e.g. a CLB output feeding
  back to its own input); gains use pin *counts* per net per side;
* gain maintenance recomputes the gains of nodes on affected nets instead of
  the classic delta rules, but only when a net's side counts pass through
  the "critical window" (counts small enough to matter), which preserves
  exactness at near-linear cost;
* instead of the fixed gain-bucket array we use two lazy max-heaps (one per
  side) with update stamps, which keeps the max-gain admissible-move
  selection O(log n) without bounding gains a priori.

Balance is expressed either as a tolerance around the perfect 50/50 CLB
split or as explicit ``side0_bounds``; zero-weight nodes (terminals) move
freely.  ``fixed`` pins nodes to a side (used by the k-way carver).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.robust import faults
from repro.robust.budget import Budget

#: How many accepted moves between budget polls inside a pass; keeps the
#: cooperative deadline check off the per-move hot path.
_BUDGET_POLL_MOVES = 128


@dataclass
class FMConfig:
    """Knobs for one FM run."""

    seed: int = 0
    balance_tolerance: float = 0.02
    max_passes: int = 16
    side0_bounds: Optional[Tuple[int, int]] = None
    fixed: Dict[int, int] = field(default_factory=dict)
    #: Optional wall-clock budget; when it expires the run stops refining
    #: at the next checkpoint and returns its best state so far.
    budget: Optional[Budget] = None


@dataclass
class FMResult:
    """Outcome of one FM run."""

    assignment: List[int]
    cut_size: int
    initial_cut: int
    passes: int
    pass_gains: List[int]

    @property
    def improvement(self) -> int:
        return self.initial_cut - self.cut_size


class _FMState:
    """Mutable run state shared by the pass loop."""

    def __init__(self, hg: Hypergraph, config: FMConfig, initial: Optional[Sequence[int]]):
        self.hg = hg
        self.config = config
        rng = random.Random(config.seed)
        n_nodes = len(hg.nodes)

        # (net, pin count) pairs per node, distinct nets.
        self.node_net_pins: List[List[Tuple[int, int]]] = []
        for node in hg.nodes:
            counts: Dict[int, int] = {}
            for net in node.input_nets:
                counts[net] = counts.get(net, 0) + 1
            for net in node.output_nets:
                counts[net] = counts.get(net, 0) + 1
            self.node_net_pins.append(list(counts.items()))

        # Critical window per net: the largest per-node pin count.
        self.net_maxk: List[int] = [0] * len(hg.nets)
        self.net_nodes: List[List[int]] = [[] for _ in hg.nets]
        for node_idx, pairs in enumerate(self.node_net_pins):
            for net, k in pairs:
                self.net_nodes[net].append(node_idx)
                if k > self.net_maxk[net]:
                    self.net_maxk[net] = k

        self.side: List[int] = self._initial_sides(rng, initial)
        self.counts: List[List[int]] = [[0, 0] for _ in hg.nets]
        for node_idx, pairs in enumerate(self.node_net_pins):
            s = self.side[node_idx]
            for net, k in pairs:
                self.counts[net][s] += k

        self.weights = [node.clb_weight for node in hg.nodes]
        self.sizes = [0, 0]
        for node_idx, w in enumerate(self.weights):
            self.sizes[self.side[node_idx]] += w

        self.total_weight = sum(self.weights)
        if config.side0_bounds is not None:
            self.lo0, self.hi0 = config.side0_bounds
        else:
            slack = max(1, int(config.balance_tolerance * self.total_weight))
            half = self.total_weight / 2.0
            self.lo0 = max(0, int(half) - slack)
            self.hi0 = min(self.total_weight, int(half + 0.5) + slack)

        self.locked = [False] * n_nodes
        self.fixed_set = set(config.fixed)
        self.movable = [i for i in range(n_nodes) if i not in self.fixed_set]
        self.stamp = [0] * n_nodes
        self._push_counter = 0

    def _initial_sides(
        self, rng: random.Random, initial: Optional[Sequence[int]]
    ) -> List[int]:
        hg, config = self.hg, self.config
        if initial is not None:
            sides = list(initial)
            if len(sides) != len(hg.nodes):
                raise ValueError("initial assignment length mismatch")
        else:
            order = list(range(len(hg.nodes)))
            rng.shuffle(order)
            total = sum(node.clb_weight for node in hg.nodes)
            if config.side0_bounds is not None:
                target0 = (config.side0_bounds[0] + config.side0_bounds[1]) / 2.0
            else:
                target0 = total / 2.0
            sides = [1] * len(hg.nodes)
            acc = 0
            for idx in order:
                w = hg.nodes[idx].clb_weight
                if w == 0:
                    sides[idx] = rng.randrange(2)
                elif acc + w <= target0:
                    sides[idx] = 0
                    acc += w
        for node_idx, fixed_side in config.fixed.items():
            sides[node_idx] = fixed_side
        return sides

    # ------------------------------------------------------------------
    def gain(self, node_idx: int) -> int:
        """Exact cut delta of moving ``node_idx`` to the other side."""
        s = self.side[node_idx]
        total = 0
        for net, k in self.node_net_pins[node_idx]:
            f = self.counts[net][s]
            t = self.counts[net][1 - s]
            if t == 0:
                if f > k:
                    total -= 1
            elif f == k:
                total += 1
        return total

    def cut_size(self) -> int:
        return sum(1 for c in self.counts if c[0] > 0 and c[1] > 0)

    def admissible(self, node_idx: int) -> bool:
        w = self.weights[node_idx]
        if w == 0:
            return True
        if self.side[node_idx] == 0:
            new0 = self.sizes[0] - w
        else:
            new0 = self.sizes[0] + w
        return self.lo0 <= new0 <= self.hi0

    def apply(self, node_idx: int) -> None:
        s = self.side[node_idx]
        for net, k in self.node_net_pins[node_idx]:
            self.counts[net][s] -= k
            self.counts[net][1 - s] += k
        self.side[node_idx] = 1 - s
        w = self.weights[node_idx]
        self.sizes[s] -= w
        self.sizes[1 - s] += w


def fm_bipartition(
    hg: Hypergraph,
    config: Optional[FMConfig] = None,
    initial: Optional[Sequence[int]] = None,
) -> FMResult:
    """Run FM on ``hg``; returns the best bipartition found."""
    config = config or FMConfig()
    faults.maybe_fire("fm.run", seed=config.seed)
    state = _FMState(hg, config, initial)
    initial_cut = state.cut_size()
    pass_gains: List[int] = []

    for _ in range(config.max_passes):
        if config.budget is not None and config.budget.expired:
            break
        gain_of_pass = _run_pass(state)
        pass_gains.append(gain_of_pass)
        if gain_of_pass <= 0:
            break

    return FMResult(
        assignment=list(state.side),
        cut_size=state.cut_size(),
        initial_cut=initial_cut,
        passes=len(pass_gains),
        pass_gains=pass_gains,
    )


def _run_pass(state: _FMState) -> int:
    """One FM pass; returns the gain of the accepted prefix."""
    for idx in range(len(state.locked)):
        # Fixed nodes stay locked so neighbour refreshes cannot requeue them.
        state.locked[idx] = idx in state.fixed_set
    heaps: List[List[Tuple[int, int, int, int]]] = [[], []]

    def push(node_idx: int) -> None:
        state.stamp[node_idx] += 1
        state._push_counter += 1
        heapq.heappush(
            heaps[state.side[node_idx]],
            (-state.gain(node_idx), state._push_counter, node_idx, state.stamp[node_idx]),
        )

    for node_idx in state.movable:
        push(node_idx)

    moves: List[int] = []
    cumulative = 0
    best_gain = 0
    best_index = 0
    deferred: List[Tuple[int, Tuple[int, int, int, int]]] = []

    while True:
        # Pick the best valid, admissible entry across both heaps.
        chosen = -1
        while chosen < 0:
            best_side = -1
            for s in (0, 1):
                heap = heaps[s]
                while heap:
                    neg_gain, _, node_idx, stamp = heap[0]
                    if (
                        state.locked[node_idx]
                        or stamp != state.stamp[node_idx]
                        or state.side[node_idx] != s
                    ):
                        heapq.heappop(heap)
                        continue
                    break
                if not heap:
                    continue
                if best_side < 0 or heap[0][0] < heaps[best_side][0][0]:
                    best_side = s
            if best_side < 0:
                chosen = -2
                break
            entry = heapq.heappop(heaps[best_side])
            node_idx = entry[2]
            if state.admissible(node_idx):
                chosen = node_idx
            else:
                deferred.append((best_side, entry))
        if chosen == -2:
            break

        gain = state.gain(chosen)
        state.apply(chosen)
        state.locked[chosen] = True
        moves.append(chosen)
        cumulative += gain
        if cumulative > best_gain:
            best_gain = cumulative
            best_index = len(moves)

        budget = state.config.budget
        if (
            budget is not None
            and len(moves) % _BUDGET_POLL_MOVES == 0
            and budget.expired
        ):
            break  # rollback below still lands on the best prefix

        # Inadmissible entries may have become admissible: restore them.
        for s, entry in deferred:
            node_idx = entry[2]
            if not state.locked[node_idx] and entry[3] == state.stamp[node_idx]:
                heapq.heappush(heaps[s], entry)
        deferred.clear()

        # Refresh gains of neighbours on nets whose critical window moved.
        new_side = state.side[chosen]
        for net, k in state.node_net_pins[chosen]:
            f_after = state.counts[net][new_side]
            t_after = state.counts[net][1 - new_side]
            f_before = f_after - k
            t_before = t_after + k
            window = state.net_maxk[net]
            if (
                min(f_before, t_before) > window
                and min(f_after, t_after) > window
            ):
                continue
            for other in state.net_nodes[net]:
                if other != chosen and not state.locked[other]:
                    push(other)

    # Roll back to the best prefix.
    for node_idx in reversed(moves[best_index:]):
        state.apply(node_idx)
    return best_gain


def best_of_runs(
    hg: Hypergraph,
    runs: int,
    base_config: Optional[FMConfig] = None,
) -> Tuple[FMResult, List[int]]:
    """Run FM ``runs`` times with derived seeds; return (best result, all cuts)."""
    base_config = base_config or FMConfig()
    best: Optional[FMResult] = None
    cuts: List[int] = []
    for run in range(runs):
        if (
            best is not None
            and base_config.budget is not None
            and base_config.budget.expired
        ):
            break
        config = FMConfig(
            seed=base_config.seed * 7919 + run,
            balance_tolerance=base_config.balance_tolerance,
            max_passes=base_config.max_passes,
            side0_bounds=base_config.side0_bounds,
            fixed=dict(base_config.fixed),
            budget=base_config.budget,
        )
        result = fm_bipartition(hg, config)
        cuts.append(result.cut_size)
        if best is None or result.cut_size < best.cut_size:
            best = result
    assert best is not None
    return best, cuts
