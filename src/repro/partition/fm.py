"""Classic Fiduccia-Mattheyses bipartitioning (reference [15] of the paper).

This is the replication-free baseline of the paper's first experiment
("F-M min-cut") and the inner engine of the no-replication k-way flow.  The
implementation follows the original algorithm: single-node moves, gain
ordering, one lock per node per pass, best-prefix rollback, and repeated
passes until a pass yields no improvement.

Differences from the textbook presentation, forced by the pin-level model:

* a node may contribute several pins to one net (e.g. a CLB output feeding
  back to its own input); gains use pin *counts* per net per side;
* gain maintenance uses exact delta updates on move: when a net's side
  counts pass through the "critical window" (counts small enough to
  matter), the gains of the nodes on that net are adjusted by the
  contribution difference in O(1) each, which preserves exactness at
  near-linear cost; the cut size is maintained incrementally the same way;
* move selection uses bounded gain-bucket arrays (one per side) indexed by
  gain, each bucket ordered by push counter, with stamp-based lazy
  invalidation.  Selection order -- highest gain, ties broken by earliest
  push, side 0 preferred on cross-side ties -- reproduces the original
  lazy-heap engine (kept verbatim in :mod:`repro.partition.reference`)
  bit for bit; ``tests/test_fm_equivalence.py`` enforces this.

The hypergraph is traversed through a shared read-only
:class:`~repro.hypergraph.compact.CompactHypergraph` (flat CSR incidence
arrays); callers that run FM many times on one hypergraph -- multi-start,
the k-way carver -- build it once and pass it to every run.

Balance is expressed either as a tolerance around the perfect 50/50 CLB
split or as explicit ``side0_bounds``; zero-weight nodes (terminals) move
freely.  ``fixed`` pins nodes to a side (used by the k-way carver).
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.compact import CompactHypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs.metrics import get_registry
from repro.robust import faults
from repro.robust.budget import Budget

#: How many accepted moves between budget polls inside a pass; keeps the
#: cooperative deadline check off the per-move hot path.
_BUDGET_POLL_MOVES = 128

#: Upper bounds for the ``fm.pass_seconds`` histogram.
_PASS_SECONDS_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)


@dataclass
class FMConfig:
    """Knobs for one FM run."""

    seed: int = 0
    balance_tolerance: float = 0.02
    max_passes: int = 16
    side0_bounds: Optional[Tuple[int, int]] = None
    fixed: Dict[int, int] = field(default_factory=dict)
    #: Optional wall-clock budget; when it expires the run stops refining
    #: at the next checkpoint and returns its best state so far.
    budget: Optional[Budget] = None
    #: Seed each pass only from nodes incident to a cut net.  The frontier
    #: still expands naturally (neighbour refreshes re-queue interior nodes
    #: as the boundary moves), but pass startup cost drops from O(n) pushes
    #: to O(boundary) -- the multilevel refiner's hot path.  Off by default:
    #: full seeding is what the bit-identity contract with the reference
    #: engine covers.
    boundary_refine: bool = False


@dataclass
class FMResult:
    """Outcome of one FM run."""

    assignment: List[int]
    cut_size: int
    initial_cut: int
    passes: int
    pass_gains: List[int]

    @property
    def improvement(self) -> int:
        return self.initial_cut - self.cut_size


class _GainBuckets:
    """Bounded gain-bucket array for one side.

    ``buckets[g + offset]`` holds the pending entries of gain ``g`` as a
    min-heap on ``(push counter, node, stamp)``, so within one gain level
    the earliest push wins -- the same total order as the reference
    engine's ``(-gain, counter)`` heap key.  Entries are invalidated
    lazily via the per-node stamp; ``hi`` tracks the highest possibly
    non-empty bucket and only ever descends between pushes.
    """

    __slots__ = ("offset", "buckets", "hi")

    def __init__(self, max_gain: int) -> None:
        self.offset = max_gain
        self.buckets: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(2 * max_gain + 1)
        ]
        self.hi = -1

    def push(self, gain: int, counter: int, node: int, stamp: int) -> None:
        i = gain + self.offset
        heapq.heappush(self.buckets[i], (counter, node, stamp))
        if i > self.hi:
            self.hi = i

    def peek(
        self, locked: List[bool], stamps: List[int], sides: List[int], want: int
    ) -> Optional[Tuple[int, int, int, int]]:
        """Best live entry as ``(gain, counter, node, stamp)``; purges stale."""
        hi = self.hi
        buckets = self.buckets
        while hi >= 0:
            bucket = buckets[hi]
            while bucket:
                counter, node, stamp = bucket[0]
                if (
                    locked[node]
                    or stamp != stamps[node]
                    or sides[node] != want
                ):
                    heapq.heappop(bucket)
                    continue
                self.hi = hi
                return (hi - self.offset, counter, node, stamp)
            hi -= 1
        self.hi = -1
        return None

    def pop_top(self) -> None:
        """Remove the entry last returned by :meth:`peek`."""
        heapq.heappop(self.buckets[self.hi])


class _FMState:
    """Mutable run state shared by the pass loop.

    Net side counts, the cut size and every node's exact move gain are
    maintained incrementally by :meth:`apply`; :meth:`gain` and
    :meth:`cut_size` are O(1) reads.
    """

    def __init__(
        self,
        hg: Optional[Hypergraph],
        config: FMConfig,
        initial: Optional[Sequence[int]],
        compact: Optional[CompactHypergraph] = None,
    ):
        if hg is None and compact is None:
            raise ValueError("either hg or compact is required")
        self.hg = hg
        self.config = config
        self.compact = compact or CompactHypergraph.from_hypergraph(hg)
        cp = self.compact
        rng = random.Random(config.seed)
        n_nodes = cp.n_nodes

        self.weights = cp.weights  # shared read-only
        self.side: List[int] = self._initial_sides(rng, initial)

        self._counts0 = [0] * cp.n_nets
        self._counts1 = [0] * cp.n_nets
        nns, nn, nnc = cp.node_net_start, cp.node_nets, cp.node_net_counts
        for v in range(n_nodes):
            row = self._counts0 if self.side[v] == 0 else self._counts1
            for i in range(nns[v], nns[v + 1]):
                row[nn[i]] += nnc[i]

        self.sizes = [0, 0]
        for v, w in enumerate(self.weights):
            self.sizes[self.side[v]] += w

        self.total_weight = sum(self.weights)
        if config.side0_bounds is not None:
            self.lo0, self.hi0 = config.side0_bounds
        else:
            slack = max(1, int(config.balance_tolerance * self.total_weight))
            half = self.total_weight / 2.0
            self.lo0 = max(0, int(half) - slack)
            self.hi0 = min(self.total_weight, int(half + 0.5) + slack)

        self.locked = [False] * n_nodes
        # Observability tallies, written only at pass boundaries.
        self.moves_total = 0
        self.thaws_total = 0
        self.fixed_set = set(config.fixed)
        self.movable = [i for i in range(n_nodes) if i not in self.fixed_set]
        self.stamp = [0] * n_nodes
        self._push_counter = 0

        # Incrementally maintained cut size and exact per-node gains.  The
        # pass loop refreshes only the gains it will read (unlocked nodes)
        # and re-derives the full array at pass boundaries when needed.
        self._cut = sum(
            1
            for e in range(cp.n_nets)
            if self._counts0[e] > 0 and self._counts1[e] > 0
        )
        self.gains = [0] * n_nodes
        self._gains_dirty = False
        self._recompute_gains()

    def _recompute_gains(self) -> None:
        """Re-derive every node's exact gain from the current counts."""
        cp = self.compact
        c0, c1 = self._counts0, self._counts1
        side, gains = self.side, self.gains
        nns, nn, nnc = cp.node_net_start, cp.node_nets, cp.node_net_counts
        for v in range(cp.n_nodes):
            s = side[v]
            total = 0
            for i in range(nns[v], nns[v + 1]):
                net = nn[i]
                k = nnc[i]
                f, t = (c0[net], c1[net]) if s == 0 else (c1[net], c0[net])
                if t == 0:
                    if f > k:
                        total -= 1
                elif f == k:
                    total += 1
            gains[v] = total
        self._gains_dirty = False

    def _initial_sides(
        self, rng: random.Random, initial: Optional[Sequence[int]]
    ) -> List[int]:
        cp, config = self.compact, self.config
        if initial is not None:
            sides = list(initial)
            if len(sides) != cp.n_nodes:
                raise ValueError("initial assignment length mismatch")
        else:
            order = list(range(cp.n_nodes))
            rng.shuffle(order)
            total = sum(cp.weights)
            if config.side0_bounds is not None:
                target0 = (config.side0_bounds[0] + config.side0_bounds[1]) / 2.0
            else:
                target0 = total / 2.0
            sides = [1] * cp.n_nodes
            acc = 0
            for idx in order:
                w = cp.weights[idx]
                if w == 0:
                    sides[idx] = rng.randrange(2)
                elif acc + w <= target0:
                    sides[idx] = 0
                    acc += w
        for node_idx, fixed_side in config.fixed.items():
            sides[node_idx] = fixed_side
        return sides

    # ------------------------------------------------------------------
    @property
    def counts(self) -> List[List[int]]:
        """Per-net ``[side0, side1]`` pin counts (materialized view)."""
        return [list(pair) for pair in zip(self._counts0, self._counts1)]

    def gain(self, node_idx: int) -> int:
        """Exact cut delta of moving ``node_idx`` to the other side."""
        return self.gains[node_idx]

    def cut_size(self) -> int:
        return self._cut

    def admissible(self, node_idx: int) -> bool:
        w = self.weights[node_idx]
        if w == 0:
            return True
        if self.side[node_idx] == 0:
            new0 = self.sizes[0] - w
        else:
            new0 = self.sizes[0] + w
        return self.lo0 <= new0 <= self.hi0

    def apply(self, node_idx: int) -> None:
        """Move ``node_idx`` to the other side, updating counts, the cut
        size and every affected node's gain by exact deltas."""
        cp = self.compact
        c0, c1 = self._counts0, self._counts1
        side, gains = self.side, self.gains
        nns, nn, nnc = cp.node_net_start, cp.node_nets, cp.node_net_counts
        ens, en, enc = cp.net_node_start, cp.net_nodes, cp.net_node_counts
        maxk = cp.net_maxk
        v = node_idx
        s = side[v]
        gain_v = gains[v]
        cut = self._cut
        for i in range(nns[v], nns[v + 1]):
            net = nn[i]
            k = nnc[i]
            f, t = (c0[net], c1[net]) if s == 0 else (c1[net], c0[net])
            nf = f - k
            nt = t + k
            # Delta-update gains of the other nodes on nets whose counts
            # stay inside the critical window (outside it no contribution
            # can change, so skipping is exact).
            w = maxk[net]
            if not (f > w and t > w and nf > w and nt > w):
                for j in range(ens[net], ens[net + 1]):
                    u = en[j]
                    if u == v:
                        continue
                    ku = enc[j]
                    if side[u] == s:
                        fb, tb, fa, ta = f, t, nf, nt
                    else:
                        fb, tb, fa, ta = t, f, nt, nf
                    if tb == 0:
                        cb = -1 if fb > ku else 0
                    elif fb == ku:
                        cb = 1
                    else:
                        cb = 0
                    if ta == 0:
                        ca = -1 if fa > ku else 0
                    elif fa == ku:
                        ca = 1
                    else:
                        ca = 0
                    if ca != cb:
                        gains[u] += ca - cb
            # Write back counts and maintain the cut incrementally: the
            # net was cut iff the (non-mover) side count was positive, and
            # is cut afterwards iff the mover left pins behind.
            if s == 0:
                c0[net] = nf
                c1[net] = nt
            else:
                c1[net] = nf
                c0[net] = nt
            if t > 0:
                if nf == 0:
                    cut -= 1
            elif nf > 0:
                cut += 1
        self._cut = cut
        side[v] = 1 - s
        w_v = self.weights[v]
        self.sizes[s] -= w_v
        self.sizes[1 - s] += w_v
        # Moving back undoes exactly this cut delta.
        gains[v] = -gain_v

    def _apply_counts(self, node_idx: int) -> None:
        """Move ``node_idx`` updating counts, cut and sizes only.

        Leaves ``gains`` stale (marked dirty); the pass loop re-derives
        them at the next pass boundary.  Used for rollback, where no gain
        is ever read before the recompute.
        """
        cp = self.compact
        c0, c1 = self._counts0, self._counts1
        side = self.side
        nns, nn, nnc = cp.node_net_start, cp.node_nets, cp.node_net_counts
        v = node_idx
        s = side[v]
        cut = self._cut
        for i in range(nns[v], nns[v + 1]):
            net = nn[i]
            k = nnc[i]
            if s == 0:
                f = c0[net]
                t = c1[net]
                c0[net] = nf = f - k
                c1[net] = t + k
            else:
                f = c1[net]
                t = c0[net]
                c1[net] = nf = f - k
                c0[net] = t + k
            if t > 0:
                if nf == 0:
                    cut -= 1
            elif nf > 0:
                cut += 1
        self._cut = cut
        side[v] = 1 - s
        w_v = self.weights[v]
        self.sizes[s] -= w_v
        self.sizes[1 - s] += w_v
        self._gains_dirty = True


def fm_bipartition(
    hg: Optional[Hypergraph],
    config: Optional[FMConfig] = None,
    initial: Optional[Sequence[int]] = None,
    compact: Optional[CompactHypergraph] = None,
) -> FMResult:
    """Run FM on ``hg``; returns the best bipartition found.

    ``compact`` optionally supplies a pre-built
    :class:`~repro.hypergraph.compact.CompactHypergraph` of ``hg`` so
    multi-start callers pay the flattening cost once.  ``hg`` may be
    ``None`` when ``compact`` is given -- the engine reads topology only
    through the CSR arrays, which is how the multilevel V-cycle runs FM
    on coarse levels that exist purely as :class:`CompactHypergraph`s.
    """
    config = config or FMConfig()
    faults.maybe_fire("fm.run", seed=config.seed)
    state = _FMState(hg, config, initial, compact)
    initial_cut = state.cut_size()

    reg = get_registry()
    if reg.enabled:
        with reg.span("fm.run", seed=config.seed, nodes=state.compact.n_nodes):
            pass_gains = _run_passes(state, config, reg)
    else:
        pass_gains = _run_passes(state, config, None)

    return FMResult(
        assignment=list(state.side),
        cut_size=state.cut_size(),
        initial_cut=initial_cut,
        passes=len(pass_gains),
        pass_gains=pass_gains,
    )


def _run_passes(state: _FMState, config: FMConfig, reg) -> List[int]:
    """The pass loop, with per-pass timing when a registry is active."""
    pass_gains: List[int] = []
    hist = reg.histogram("fm.pass_seconds", _PASS_SECONDS_BUCKETS) if reg else None
    moves0, thaws0 = state.moves_total, state.thaws_total

    for _ in range(config.max_passes):
        if config.budget is not None and config.budget.expired:
            break
        if hist is not None:
            t0 = time.perf_counter()
            gain_of_pass = _run_pass(state)
            hist.observe(time.perf_counter() - t0)
        else:
            gain_of_pass = _run_pass(state)
        pass_gains.append(gain_of_pass)
        if gain_of_pass <= 0:
            break

    if reg is not None:
        reg.counter("fm.runs").inc()
        reg.counter("fm.passes").inc(len(pass_gains))
        reg.counter("fm.moves").inc(state.moves_total - moves0)
        reg.counter("fm.thaws").inc(state.thaws_total - thaws0)
        # Per-run convergence series for the run ledger (one event per
        # run, outside the pass loop -- no hot-path cost).
        reg.emit_event(
            "fm.run_gains",
            seed=config.seed,
            final_cut=state.cut_size(),
            gains=list(pass_gains),
        )
    return pass_gains


def _run_pass(state: _FMState) -> int:
    """One FM pass; returns the gain of the accepted prefix.

    The hot loop is fused: one traversal per accepted move updates the
    mover's net counts, the cut, and the exact gains of the *unlocked*
    members of window nets, re-queueing each member as its gain settles.
    Locked members are skipped -- they can never be selected again this
    pass -- which leaves their gains stale; the next pass re-derives the
    full gain array before its initial pushes.  The last push per node
    always carries the exact post-move gain (a node's gain only depends
    on its own nets, and each shared net's delta lands before that net's
    push), and earlier pushes are stamp-invalidated exactly as in the
    reference engine, so selection order is preserved bit for bit.
    """
    if state._gains_dirty:
        state._recompute_gains()
    locked = state.locked
    fixed_set = state.fixed_set
    for idx in range(len(locked)):
        # Fixed nodes stay locked so neighbour refreshes cannot requeue them.
        locked[idx] = idx in fixed_set
    cp = state.compact
    side, stamps, gains = state.side, state.stamp, state.gains
    weights, sizes = state.weights, state.sizes
    c0, c1 = state._counts0, state._counts1
    nns, nn, nnc = cp.node_net_start, cp.node_nets, cp.node_net_counts
    ens, en, enc = cp.net_node_start, cp.net_nodes, cp.net_node_counts
    maxk = cp.net_maxk
    lo0, hi0 = state.lo0, state.hi0
    buckets = (_GainBuckets(cp.max_degree), _GainBuckets(cp.max_degree))
    push0, push1 = buckets[0].push, buckets[1].push
    peek0, peek1 = buckets[0].peek, buckets[1].peek

    pc = state._push_counter
    if state.config.boundary_refine:
        # Seed only nodes touching a cut net; interior nodes join via
        # neighbour refreshes once the boundary reaches them.
        for u in state.movable:
            for i in range(nns[u], nns[u + 1]):
                e = nn[i]
                if c0[e] > 0 and c1[e] > 0:
                    stamps[u] = st = stamps[u] + 1
                    pc += 1
                    (push0 if side[u] == 0 else push1)(gains[u], pc, u, st)
                    break
    else:
        for u in state.movable:
            stamps[u] = st = stamps[u] + 1
            pc += 1
            (push0 if side[u] == 0 else push1)(gains[u], pc, u, st)

    moves: List[int] = []
    n_moves = 0
    cumulative = 0
    best_gain = 0
    best_index = 0
    budget = state.config.budget
    # Balance-blocked entries parked by the direction of the side-0 size
    # change that could re-admit them; each holds (entry side, entry).
    needs_grow0: List[Tuple[int, Tuple[int, int, int, int]]] = []
    needs_shrink0: List[Tuple[int, Tuple[int, int, int, int]]] = []

    while True:
        # Pick the best live, admissible entry across both sides: highest
        # gain, ties by earliest push, side 0 preferred on cross-side ties
        # (matching the reference engine's heap comparison).
        chosen = -1
        while chosen < 0:
            e0 = peek0(locked, stamps, side, 0)
            e1 = peek1(locked, stamps, side, 1)
            if e0 is None and e1 is None:
                chosen = -2
                break
            if e1 is None or (e0 is not None and e0[0] >= e1[0]):
                sel, entry = 0, e0
            else:
                sel, entry = 1, e1
            buckets[sel].pop_top()
            node_idx = entry[2]
            w = weights[node_idx]
            if side[node_idx] == 0:
                new0 = sizes[0] - w
            else:
                new0 = sizes[0] + w
            if w == 0 or lo0 <= new0 <= hi0:
                chosen = node_idx
            elif new0 < lo0:
                # Park by which direction of side-0 movement re-admits it.
                needs_grow0.append((sel, entry))
            else:
                needs_shrink0.append((sel, entry))
        if chosen == -2:
            break

        gain = gains[chosen]
        s = side[chosen]
        locked[chosen] = True
        # Fused move: counts + cut + delta-gains + pushes in one traversal.
        cut = state._cut
        for i in range(nns[chosen], nns[chosen + 1]):
            net = nn[i]
            k = nnc[i]
            if s == 0:
                f = c0[net]
                t = c1[net]
                c0[net] = nf = f - k
                c1[net] = nt = t + k
            else:
                f = c1[net]
                t = c0[net]
                c1[net] = nf = f - k
                c0[net] = nt = t + k
            if t > 0:
                if nf == 0:
                    cut -= 1
            elif nf > 0:
                cut += 1
            w = maxk[net]
            if f > w and t > w and nf > w and nt > w:
                continue
            for j in range(ens[net], ens[net + 1]):
                u = en[j]
                if locked[u]:
                    continue
                ku = enc[j]
                if side[u] == s:
                    fb, tb, fa, ta = f, t, nf, nt
                    su = s
                else:
                    fb, tb, fa, ta = t, f, nt, nf
                    su = 1 - s
                if tb == 0:
                    cb = -1 if fb > ku else 0
                elif fb == ku:
                    cb = 1
                else:
                    cb = 0
                if ta == 0:
                    ca = -1 if fa > ku else 0
                elif fa == ku:
                    ca = 1
                else:
                    ca = 0
                if ca != cb:
                    gains[u] += ca - cb
                stamps[u] = st = stamps[u] + 1
                pc += 1
                (push0 if su == 0 else push1)(gains[u], pc, u, st)
        state._cut = cut
        side[chosen] = 1 - s
        w_v = weights[chosen]
        sizes[s] -= w_v
        sizes[1 - s] += w_v

        moves.append(chosen)
        n_moves += 1
        cumulative += gain
        if cumulative > best_gain:
            best_gain = cumulative
            best_index = n_moves

        if (
            budget is not None
            and n_moves % _BUDGET_POLL_MOVES == 0
            and budget.expired
        ):
            break  # rollback below still lands on the best prefix

        # Restore parked entries only when this move changed side-0 size in
        # the direction that can re-admit them; parked entries are exactly
        # as inadmissible as before otherwise.
        if w_v > 0:
            thawed = needs_shrink0 if s == 0 else needs_grow0
            if thawed:
                for sel, entry in thawed:
                    node_idx = entry[2]
                    if not locked[node_idx] and entry[3] == stamps[node_idx]:
                        buckets[sel].push(entry[0], entry[1], node_idx, entry[3])
                        state.thaws_total += 1
                thawed.clear()

    state._push_counter = pc
    state.moves_total += n_moves
    if moves:
        state._gains_dirty = True
    # Roll back to the best prefix (counts-only; gains re-derived next pass).
    apply_counts = state._apply_counts
    for node_idx in reversed(moves[best_index:]):
        apply_counts(node_idx)
    return best_gain


def best_of_runs(
    hg: Hypergraph,
    runs: int,
    base_config: Optional[FMConfig] = None,
    jobs: int = 1,
) -> Tuple[FMResult, List[int]]:
    """Run FM ``runs`` times with derived seeds; return (best result, all cuts).

    Derived configs share the base config's ``fixed`` mapping and
    ``budget`` object (both are read-only to the runs); only the seed
    differs.  ``jobs > 1`` fans the runs out over a process pool with a
    deterministic ordered reduction, so the winner matches ``jobs=1``.
    """
    base_config = base_config or FMConfig()
    if jobs > 1:
        from repro.perf.parallel import parallel_best_of_runs_fm

        return parallel_best_of_runs_fm(hg, runs, base_config, jobs)
    best: Optional[FMResult] = None
    cuts: List[int] = []
    compact = CompactHypergraph.from_hypergraph(hg)
    for run in range(runs):
        if (
            best is not None
            and base_config.budget is not None
            and base_config.budget.expired
        ):
            break
        config = replace(base_config, seed=base_config.seed * 7919 + run)
        result = fm_bipartition(hg, config, compact=compact)
        cuts.append(result.cut_size)
        if best is None or result.cut_size < best.cut_size:
            best = result
    assert best is not None
    return best, cuts
