"""Multilevel (coarsen-solve-uncoarsen) V-cycle on the CSR core.

This is the production successor of :mod:`repro.partition.clustering`:
the same classic scheme -- heavy-edge affinity matching, net contraction,
coarsest-level FM, uncoarsen with per-level refinement, optional
replication finish -- but run entirely on flat
:class:`~repro.hypergraph.compact.CompactHypergraph` arrays.  Coarse
levels never materialize object-graph :class:`Hypergraph`s; each level is
built array-to-array (match / weight / coarse-id int arrays, stamp-based
pin dedupe), and refinement at every level is the delta-gain FM engine in
``boundary_refine`` mode, so pass startup cost tracks the cut frontier
instead of the level size.

The V-cycle splits into two phases with different sharing profiles:

* :class:`MultilevelHierarchy` -- the coarsening stack.  Depends only on
  the hypergraph, the fixed-node set and the coarsening seed; the k-way
  carver builds it once per scan and reuses it across every carve
  candidate (mirroring how ``ReplicationTables`` is shared).
* :meth:`MultilevelHierarchy.solve` -- one projection/refinement descent
  for one (seed, side0 window), cheap enough to run per candidate.

Terminals and fixed nodes are never clustered; total cell weight is
conserved level to level, so absolute ``side0_bounds`` windows remain
valid at every level.  Everything is deterministic for a fixed seed:
matching visits cells in a seeded shuffle, scores via stamp arrays in CSR
order, and per-level FM seeds are pre-drawn in sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.hypergraph.compact import CompactHypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs.metrics import get_registry
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.fm_replication import (
    FUNCTIONAL,
    ReplicationConfig,
    ReplicationEngine,
    ReplicationResult,
)
from repro.robust.budget import Budget

#: Nets above this degree are ignored during affinity scoring (they carry
#: almost no locality signal and dominate the runtime otherwise).
_MAX_SCORING_DEGREE = 24

#: Auto-on threshold: netlists with at least this many cells default to
#: the multilevel engine when the caller leaves the tri-state flag unset.
#: Chosen well above the paper suite (largest circuit ~15k gates at full
#: scale maps to fewer cells), so existing goldens, cache keys and ledger
#: fingerprints are unaffected unless multilevel is requested explicitly.
MULTILEVEL_AUTO_MIN_CELLS = 20_000


def resolve_multilevel(flag: Optional[bool], n_cells: int) -> bool:
    """Resolve the tri-state ``multilevel`` knob against the netlist size."""
    if flag is not None:
        return flag
    return n_cells >= MULTILEVEL_AUTO_MIN_CELLS


@dataclass
class MultilevelConfig:
    """Knobs for one multilevel run."""

    seed: int = 0
    max_levels: int = 10
    min_nodes: int = 64
    coarsening_stall_ratio: float = 0.9  # stop when a level shrinks less
    balance_tolerance: float = 0.02
    max_passes: int = 12
    replication_refine: bool = False
    threshold: Union[int, float] = 0
    max_scoring_degree: int = _MAX_SCORING_DEGREE
    style: str = FUNCTIONAL
    fixed: Dict[int, int] = field(default_factory=dict)
    max_growth: Optional[float] = None
    budget: Optional[Budget] = None


@dataclass
class MultilevelResult:
    """Outcome of a multilevel bipartitioning run."""

    assignment: List[int]
    cut_size: int
    levels: int
    replication: Optional[ReplicationResult] = None
    #: Per-level profile of the descent (coarsest first): cells, nets,
    #: cut after refinement, match rate of the step that built the level.
    level_stats: Optional[List[Dict[str, object]]] = None

    @property
    def final_cut(self) -> int:
        if self.replication is not None:
            return self.replication.cut_size
        return self.cut_size


def coarsen_compact(
    cp: CompactHypergraph,
    rng: random.Random,
    max_scoring_degree: int = _MAX_SCORING_DEGREE,
    protected: Sequence[int] = (),
) -> Tuple[CompactHypergraph, List[int], int]:
    """One coarsening level on CSR arrays.

    Returns ``(coarse, coarse_id, n_pairs)`` where ``coarse_id[v]`` is the
    coarse node of fine node ``v`` and ``n_pairs`` is the number of merged
    cell pairs.  Terminals and ``protected`` nodes map one-to-one; only
    unprotected cells match.  Nets whose endpoints collapse into a single
    coarse node vanish; surviving nets keep summed per-(node, net) pin
    counts and ascending member/net orders (the canonical CSR layout).
    """
    n = cp.n_nodes
    is_cell = cp.is_cell
    weights = cp.weights
    nns, nn = cp.node_net_start, cp.node_nets
    ens, en, enc = cp.net_node_start, cp.net_nodes, cp.net_node_counts
    prot = protected if isinstance(protected, (set, frozenset)) else set(protected)

    order = [v for v in range(n) if is_cell[v] and v not in prot]
    rng.shuffle(order)

    # Heavy-edge matching with stamp-array scoring: for each unmatched
    # cell, accumulate sum(1 / (|net| - 1)) over shared scoring nets into
    # score[], touching only actual neighbours.
    matched = [False] * n
    coarse_id = [-1] * n
    score = [0.0] * n
    stamp = [0] * n
    tick = 0
    coarse_weights: List[int] = []
    coarse_is_cell: List[bool] = []
    n_pairs = 0
    for u in order:
        if matched[u]:
            continue
        matched[u] = True
        tick += 1
        touched: List[int] = []
        for i in range(nns[u], nns[u + 1]):
            e = nn[i]
            deg = ens[e + 1] - ens[e]
            if deg < 2 or deg > max_scoring_degree:
                continue
            w = 1.0 / (deg - 1)
            for j in range(ens[e], ens[e + 1]):
                v = en[j]
                if v == u or matched[v] or not is_cell[v] or v in prot:
                    continue
                if stamp[v] != tick:
                    stamp[v] = tick
                    score[v] = w
                    touched.append(v)
                else:
                    score[v] += w
        best_v = -1
        best_score = 0.0
        wu = weights[u]
        for v in touched:
            # Prefer light partners: keeps coarse weights balanced.
            adj = score[v] / (1.0 + 0.1 * (weights[v] + wu))
            if adj > best_score:
                best_score = adj
                best_v = v
        cid = len(coarse_weights)
        coarse_id[u] = cid
        if best_v >= 0:
            matched[best_v] = True
            coarse_id[best_v] = cid
            coarse_weights.append(wu + weights[best_v])
            n_pairs += 1
        else:
            coarse_weights.append(wu)
        coarse_is_cell.append(True)
    # Terminals and protected nodes: one-to-one, in index order.
    for v in range(n):
        if coarse_id[v] < 0:
            coarse_id[v] = len(coarse_weights)
            coarse_weights.append(weights[v])
            coarse_is_cell.append(bool(is_cell[v]))
    m = len(coarse_weights)

    # Net contraction: dedupe coarse endpoints per net with a stamp array,
    # summing pin counts; nets with < 2 distinct coarse members vanish.
    cstamp = [0] * m
    ccount = [0] * m
    cnet_start = [0]
    cnet_nodes: List[int] = []
    cnet_counts: List[int] = []
    cnet_maxk: List[int] = []
    tick = 0
    for e in range(cp.n_nets):
        tick += 1
        members: List[int] = []
        for j in range(ens[e], ens[e + 1]):
            c = coarse_id[en[j]]
            k = enc[j]
            if cstamp[c] != tick:
                cstamp[c] = tick
                ccount[c] = k
                members.append(c)
            else:
                ccount[c] += k
        if len(members) < 2:
            continue
        members.sort()
        mk = 0
        for c in members:
            cnet_nodes.append(c)
            k = ccount[c]
            cnet_counts.append(k)
            if k > mk:
                mk = k
        cnet_start.append(len(cnet_nodes))
        cnet_maxk.append(mk)
    n_cnets = len(cnet_maxk)

    # Transpose to the node-major view (nets ascending per node).
    degree = [0] * m
    for c in cnet_nodes:
        degree[c] += 1
    node_start = [0] * (m + 1)
    acc = 0
    for v2 in range(m):
        node_start[v2] = acc
        acc += degree[v2]
    node_start[m] = acc
    node_nets = [0] * acc
    node_counts = [0] * acc
    cursor = node_start[:m]
    for e2 in range(n_cnets):
        for j in range(cnet_start[e2], cnet_start[e2 + 1]):
            c = cnet_nodes[j]
            p = cursor[c]
            node_nets[p] = e2
            node_counts[p] = cnet_counts[j]
            cursor[c] = p + 1

    coarse = CompactHypergraph(
        n_nodes=m,
        n_nets=n_cnets,
        node_net_start=node_start,
        node_nets=node_nets,
        node_net_counts=node_counts,
        net_node_start=cnet_start,
        net_nodes=cnet_nodes,
        net_node_counts=cnet_counts,
        net_maxk=cnet_maxk,
        weights=coarse_weights,
        is_cell=coarse_is_cell,
    )
    return coarse, coarse_id, n_pairs


class MultilevelHierarchy:
    """The coarsening stack of one hypergraph, shared across solves.

    ``levels[0]`` is the finest (input) hypergraph; ``maps[i]`` sends a
    level-``i`` node to its level-``i+1`` coarse node.  ``fixed_maps[i]``
    is the config's fixed assignment projected to level ``i``.  Building
    the stack consumes the config seed only; :meth:`solve` takes its own
    seed, so one hierarchy serves many solve candidates deterministically.
    """

    def __init__(self, compact: CompactHypergraph, config: MultilevelConfig):
        self.config = config
        self.levels: List[CompactHypergraph] = [compact]
        self.maps: List[List[int]] = []
        self.fixed_maps: List[Dict[int, int]] = [dict(config.fixed)]
        self.cell_counts: List[int] = [sum(1 for c in compact.is_cell if c)]
        self.match_rates: List[float] = []
        reg = get_registry()
        with reg.span(
            "ml.coarsen", nodes=compact.n_nodes, nets=compact.n_nets
        ):
            self._build()
        if reg.enabled:
            reg.counter("multilevel.levels").inc(len(self.levels))

    def _build(self) -> None:
        config = self.config
        rng = random.Random(config.seed)
        current = self.levels[0]
        n_cells = self.cell_counts[0]
        while len(self.levels) < config.max_levels and n_cells > config.min_nodes:
            coarse, cid, n_pairs = coarsen_compact(
                current,
                rng,
                max_scoring_degree=config.max_scoring_degree,
                protected=set(self.fixed_maps[-1]),
            )
            coarse_cells = n_cells - n_pairs
            if coarse_cells >= n_cells * config.coarsening_stall_ratio:
                break  # matching stalled: deeper levels would not shrink
            self.maps.append(cid)
            self.levels.append(coarse)
            self.fixed_maps.append(
                {cid[v]: s for v, s in self.fixed_maps[-1].items()}
            )
            self.match_rates.append(2.0 * n_pairs / n_cells if n_cells else 0.0)
            self.cell_counts.append(coarse_cells)
            current = coarse
            n_cells = coarse_cells

    def solve(
        self,
        seed: int,
        side0_bounds: Optional[Tuple[int, int]] = None,
    ) -> Tuple[List[int], int, List[Dict[str, object]]]:
        """One V-cycle descent: coarsest FM, then project + refine down.

        Returns ``(assignment, cut, level_stats)`` at the finest level.
        ``side0_bounds`` is an absolute side-0 CLB window, valid at every
        level because coarsening conserves cell weight.
        """
        config = self.config
        rng = random.Random(seed)
        level_seeds = [rng.randrange(1 << 30) for _ in self.levels]
        reg = get_registry()
        k = len(self.levels) - 1
        stats: List[Dict[str, object]] = []
        with reg.span("ml.refine", seed=seed, levels=len(self.levels)):
            result = fm_bipartition(
                None,
                FMConfig(
                    seed=level_seeds[k],
                    balance_tolerance=config.balance_tolerance,
                    max_passes=config.max_passes,
                    side0_bounds=side0_bounds,
                    fixed=self.fixed_maps[k],
                    budget=config.budget,
                ),
                compact=self.levels[k],
            )
            assignment = result.assignment
            cut = result.cut_size
            self._record_level(reg, stats, k, cut)
            for i in range(k - 1, -1, -1):
                cid = self.maps[i]
                fine = self.levels[i]
                projected = [assignment[cid[v]] for v in range(fine.n_nodes)]
                if config.budget is not None and config.budget.expired:
                    # Out of time: keep projecting without refinement so the
                    # caller still gets a feasible finest-level assignment.
                    assignment = projected
                    continue
                refined = fm_bipartition(
                    None,
                    FMConfig(
                        seed=level_seeds[i],
                        balance_tolerance=config.balance_tolerance,
                        max_passes=config.max_passes,
                        side0_bounds=side0_bounds,
                        fixed=self.fixed_maps[i],
                        budget=config.budget,
                        boundary_refine=True,
                    ),
                    initial=projected,
                    compact=fine,
                )
                assignment = refined.assignment
                cut = refined.cut_size
                self._record_level(reg, stats, i, cut)
        if reg.enabled:
            reg.counter("multilevel.vcycles").inc()
        return assignment, cut, stats

    def _record_level(self, reg, stats: List[Dict[str, object]], i: int, cut: int) -> None:
        level = self.levels[i]
        entry: Dict[str, object] = {
            "level": i,
            "cells": self.cell_counts[i],
            "nets": level.n_nets,
            "cut": cut,
            # Rate of the matching step that built this level (finest: 1.0
            # by convention -- it is the input, nothing was matched).
            "match_rate": round(self.match_rates[i - 1], 4) if i > 0 else 1.0,
        }
        stats.append(entry)
        if reg.enabled:
            reg.emit_event("ml.level", **entry)


def vcycle_bipartition(
    hg: Optional[Hypergraph],
    config: Optional[MultilevelConfig] = None,
    compact: Optional[CompactHypergraph] = None,
) -> MultilevelResult:
    """Full multilevel bipartition of one hypergraph.

    ``compact`` optionally supplies the pre-built CSR view; ``hg`` may be
    ``None`` when ``compact`` is given and ``replication_refine`` is off
    (the replication engine still needs the object graph for functional
    structure).
    """
    config = config or MultilevelConfig()
    if compact is None:
        if hg is None:
            raise ValueError("either hg or compact is required")
        compact = CompactHypergraph.from_hypergraph(hg)
    rng = random.Random(config.seed)
    build_seed = rng.randrange(1 << 30)
    solve_seed = rng.randrange(1 << 30)
    repl_seed = rng.randrange(1 << 30)

    hierarchy = MultilevelHierarchy(compact, replace(config, seed=build_seed))
    assignment, cut, stats = hierarchy.solve(solve_seed)

    replication: Optional[ReplicationResult] = None
    if config.replication_refine:
        if hg is None:
            raise ValueError("replication_refine requires the object hypergraph")
        engine = ReplicationEngine(
            hg,
            ReplicationConfig(
                seed=repl_seed,
                threshold=config.threshold,
                style=config.style,
                balance_tolerance=config.balance_tolerance,
                max_passes=config.max_passes,
                fixed=dict(config.fixed),
                max_growth=config.max_growth,
                warm_start_moves_only=False,
                budget=config.budget,
            ),
            initial=assignment,
        )
        replication = engine.run()

    return MultilevelResult(
        assignment=assignment,
        cut_size=cut,
        levels=len(hierarchy.levels),
        replication=replication,
        level_stats=stats,
    )
