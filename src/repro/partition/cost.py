"""Objective functions of the k-way formulation (paper eqs. 1 and 2).

Equation (1): total device cost ``$_k = sum_i d_i n_i`` over the device
types used by a k-way partition.  Equation (2): the interconnect measure is
the average IOB utilization ``bar t_k = sum_j t_Pj / sum_i t_i n_i``.  The
paper additionally reports average CLB utilization (its Table V), computed
the same way over CLB capacities.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.partition.devices import Device


@dataclass(frozen=True)
class BlockUsage:
    """Resource usage of one partition P_j on its assigned device."""

    device: Device
    clbs: int
    terminals: int

    @property
    def clb_utilization(self) -> float:
        return self.clbs / self.device.clbs

    @property
    def iob_utilization(self) -> float:
        return self.terminals / self.device.terminals

    @property
    def feasible(self) -> bool:
        return self.device.fits(self.clbs, self.terminals)


@dataclass
class SolutionCost:
    """Aggregate objective report for one k-way solution."""

    blocks: List[BlockUsage] = field(default_factory=list)

    @property
    def k(self) -> int:
        return len(self.blocks)

    @property
    def total_cost(self) -> float:
        """Eq. (1): sum of device prices."""
        return sum(b.device.price for b in self.blocks)

    @property
    def device_counts(self) -> Dict[str, int]:
        """n_i per device type."""
        return dict(Counter(b.device.name for b in self.blocks))

    @property
    def total_clb_capacity(self) -> int:
        return sum(b.device.clbs for b in self.blocks)

    @property
    def total_iob_capacity(self) -> int:
        return sum(b.device.terminals for b in self.blocks)

    @property
    def avg_clb_utilization(self) -> float:
        """Used CLBs over provisioned CLB capacity (Table V quantity)."""
        cap = self.total_clb_capacity
        return sum(b.clbs for b in self.blocks) / cap if cap else 0.0

    @property
    def avg_iob_utilization(self) -> float:
        """Eq. (2): used terminals over provisioned IOB capacity."""
        cap = self.total_iob_capacity
        return sum(b.terminals for b in self.blocks) / cap if cap else 0.0

    @property
    def feasible(self) -> bool:
        return all(b.feasible for b in self.blocks)

    def objective_key(self) -> Tuple[float, float]:
        """Lexicographic objective: minimize cost, then interconnect."""
        return (self.total_cost, self.avg_iob_utilization)

    def summary(self) -> Dict[str, object]:
        return {
            "k": self.k,
            "cost": self.total_cost,
            "devices": self.device_counts,
            "avg_clb_util": round(self.avg_clb_utilization, 4),
            "avg_iob_util": round(self.avg_iob_utilization, 4),
            "feasible": self.feasible,
        }


def solution_cost(blocks: Sequence[Tuple[Device, int, int]]) -> SolutionCost:
    """Build a :class:`SolutionCost` from ``(device, clbs, terminals)`` triples."""
    return SolutionCost(
        blocks=[BlockUsage(device=d, clbs=c, terminals=t) for d, c, t in blocks]
    )
