"""Spectral bipartitioning baseline (paper reference [8], Chan-Schlag-Zien).

The paper's related work includes spectral ratio-cut partitioning; this
module provides a compact Fiedler-vector bipartitioner as an additional
baseline for the experiment harness:

1. expand the hypergraph to a weighted clique graph (each net of degree d
   contributes edges of weight 1/(d-1) among its cells -- the standard
   net model, the same one the clustering pass uses);
2. compute the Fiedler vector (second-smallest Laplacian eigenvector) with
   ``numpy``;
3. sweep the sorted vector for the best balanced split, then (optionally)
   polish with one FM refinement.

Pure-numpy dense eigendecomposition bounds the practical size to a few
thousand cells, which covers the benchmark suite at experiment scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import cut_size
from repro.partition.fm import FMConfig, fm_bipartition


@dataclass
class SpectralConfig:
    """Knobs for the spectral bipartitioner."""

    balance_tolerance: float = 0.02
    refine_with_fm: bool = True
    seed: int = 0
    max_cells: int = 4000  # dense eigensolve guard


@dataclass
class SpectralResult:
    assignment: List[int]
    cut_size: int
    fiedler_value: float


def _clique_laplacian(hg: Hypergraph, cells: List[int]) -> np.ndarray:
    index = {v: i for i, v in enumerate(cells)}
    n = len(cells)
    adj = np.zeros((n, n), dtype=float)
    for net in hg.nets:
        members = [
            index[v] for v in net.node_indices() if v in index
        ]
        if len(members) < 2:
            continue
        w = 1.0 / (len(members) - 1)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                adj[u, v] += w
                adj[v, u] += w
    lap = np.diag(adj.sum(axis=1)) - adj
    return lap


def spectral_bipartition(
    hg: Hypergraph, config: Optional[SpectralConfig] = None
) -> SpectralResult:
    """Fiedler-vector bipartition of the hypergraph's cells.

    Terminals (zero-weight nodes) are assigned greedily to the side where
    most of their net's cells landed.
    """
    config = config or SpectralConfig()
    cells = hg.cell_indices()
    if len(cells) > config.max_cells:
        raise ValueError(
            f"{len(cells)} cells exceed the dense-eigensolve guard "
            f"({config.max_cells}); use FM or multilevel for this size"
        )
    if len(cells) < 2:
        assignment = [0] * len(hg.nodes)
        return SpectralResult(assignment, cut_size(hg, assignment), 0.0)

    lap = _clique_laplacian(hg, cells)
    eigenvalues, eigenvectors = np.linalg.eigh(lap)
    fiedler = eigenvectors[:, 1]
    fiedler_value = float(eigenvalues[1])

    # Sweep the sorted Fiedler vector for the best balanced prefix.
    order = np.argsort(fiedler)
    weights = np.array([hg.nodes[cells[i]].clb_weight for i in order], dtype=float)
    total = weights.sum()
    slack = max(1.0, config.balance_tolerance * total)
    prefix = np.cumsum(weights)
    best_split = None
    best_cut = None
    assignment = [0] * len(hg.nodes)
    candidates = [
        k
        for k in range(1, len(order))
        if abs(prefix[k - 1] - total / 2) <= slack
    ]
    if not candidates:
        # fall back to the median split
        candidates = [len(order) // 2]
    for k in candidates:
        for i, pos in enumerate(order):
            assignment[cells[pos]] = 0 if i < k else 1
        cut = cut_size(hg, assignment)
        if best_cut is None or cut < best_cut:
            best_cut = cut
            best_split = k
    assert best_split is not None
    for i, pos in enumerate(order):
        assignment[cells[pos]] = 0 if i < best_split else 1

    # Terminals follow the majority side of their net.
    for node in hg.nodes:
        if node.is_cell:
            continue
        votes = [0, 0]
        for net_idx in node.adjacent_nets():
            for other, _, _ in hg.nets[net_idx].pins:
                if hg.nodes[other].is_cell:
                    votes[assignment[other]] += 1
        assignment[node.index] = 0 if votes[0] >= votes[1] else 1

    if config.refine_with_fm:
        refined = fm_bipartition(
            hg,
            FMConfig(
                seed=config.seed,
                balance_tolerance=config.balance_tolerance,
            ),
            initial=assignment,
        )
        assignment = refined.assignment

    return SpectralResult(
        assignment=assignment,
        cut_size=cut_size(hg, assignment),
        fiedler_value=fiedler_value,
    )
