"""Warm-start repartitioning over an ECO dirty region.

Given the previous :class:`~repro.partition.kway.KWaySolution` and the
dirty region of an applied :class:`~repro.techmap.delta.NetlistDelta`,
:func:`incremental_partition` repairs the old solution instead of
re-carving from scratch:

1. **Projection** -- every instance whose original cell is outside the
   dirty region is kept exactly where the previous solution placed it.
   Dirty originals drop *all* their instances together, which is also
   the replication repair: a replica whose source cell changed is stale
   by definition, so the collapsed cell re-enters as a single whole
   instance and later cold solves may re-replicate it.
2. **Placement** -- uncovered cells (dirty + delta-added) are placed
   greedily on the block sharing the most nets with them, respecting
   device CLB capacity.  Primary I/O pads stay on their previous block
   (IOBs are fixed terminals); pads of newly-live nets join a block
   already touching the net, pads of now-dead primary inputs are
   dropped.
3. **Boundary repair** -- for every pair of blocks sharing a touched
   net, a pair-local FM (:func:`~repro.partition.fm.fm_bipartition`
   with ``boundary_refine=True``) re-balances the *dirty* instances
   only; everything untouched is hard-fixed and nets leaving the pair
   are pinned permanently cut by per-side pseudo terminals, so the
   repair can only improve the pair's contribution to the global cut.

The repaired solution is re-finalized with the cold path's own global
terminal accounting (:func:`repro.partition.kway._finalize`), so eq.1 /
eq.2 costs and the ``replicated_cells`` set are computed by the same
code as a cold solve and the result satisfies every invariant of
:func:`repro.partition.verify.verify_solution`.

The function *declines* rather than degrades: when the dirty region is
too large, a cell cannot be placed, or the repaired cost leaves the
tolerance band around the previous cost, it returns ``(None, info)``
and the caller runs a full cold solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph, NodeKind
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_SPAN
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.kway import BlockResult, KWaySolution, _finalize, _initial_state
from repro.robust.budget import Budget
from repro.techmap.delta import DirtyRegion
from repro.techmap.mapped import MappedNetlist

#: Dirty fraction above which repair is declined in favour of a cold
#: solve.  Past this point the "unperturbed majority" assumption behind
#: projection no longer holds and repair quality falls off fast.
DEFAULT_MAX_DIRTY_FRACTION = 0.30

#: Warm cost tolerance band: the repaired solution may cost at most
#: ``(1 + tolerance)`` times the previous solution's eq.1 cost (with the
#: eq.2 interconnect tie-breaker checked against the same band).
DEFAULT_COST_TOLERANCE = 0.25


@dataclass
class IncrementalConfig:
    """Knobs for one warm-start repair."""

    seed: int = 0
    max_passes: int = 16
    max_dirty_fraction: float = DEFAULT_MAX_DIRTY_FRACTION
    cost_tolerance: float = DEFAULT_COST_TOLERANCE
    budget: Optional[Budget] = None


@dataclass
class _WorkBlock:
    """Mutable view of one block during repair."""

    index: int
    device: object  # Device
    names: List[str] = field(default_factory=list)
    originals: List[str] = field(default_factory=list)
    inputs: List[List[str]] = field(default_factory=list)
    outputs: List[List[str]] = field(default_factory=list)
    pads: List[str] = field(default_factory=list)
    pad_nets: Set[str] = field(default_factory=set)

    @property
    def n_clbs(self) -> int:
        return len(self.names)

    def nets(self) -> Set[str]:
        acc: Set[str] = set(self.pad_nets)
        for pins in self.inputs:
            acc.update(pins)
        for pins in self.outputs:
            acc.update(pins)
        return acc

    def add(self, name: str, original: str,
            pins_in: Sequence[str], pins_out: Sequence[str]) -> None:
        self.names.append(name)
        self.originals.append(original)
        self.inputs.append(list(pins_in))
        self.outputs.append(list(pins_out))

    def pop(self, i: int) -> Tuple[str, str, List[str], List[str]]:
        return (
            self.names.pop(i),
            self.originals.pop(i),
            self.inputs.pop(i),
            self.outputs.pop(i),
        )


def _decline(info: Dict[str, object], reason: str
             ) -> Tuple[None, Dict[str, object]]:
    info["mode"] = "cold"
    info["reason"] = reason
    return None, info


def incremental_partition(
    mapped: MappedNetlist,
    previous: KWaySolution,
    dirty: DirtyRegion,
    config: Optional[IncrementalConfig] = None,
) -> Tuple[Optional[KWaySolution], Dict[str, object]]:
    """Repair ``previous`` for the post-delta netlist ``mapped``.

    Returns ``(solution, info)`` on success, ``(None, info)`` when the
    repair is declined and the caller should cold-solve;
    ``info["reason"]`` says why.
    """
    config = config or IncrementalConfig()
    info: Dict[str, object] = {
        "dirty_cells": len(dirty.cells),
        "dirty_fraction": round(dirty.fraction, 6),
    }
    if dirty.fraction > config.max_dirty_fraction:
        return _decline(
            info,
            f"dirty fraction {dirty.fraction:.3f} exceeds "
            f"{config.max_dirty_fraction:.3f}",
        )
    if previous.truncated or not previous.blocks:
        return _decline(info, "previous solution truncated or empty")

    # Fresh working state of the *new* netlist: pin lists filtered to
    # live nets, exactly as the cold carver builds them.
    cells, terms = _initial_state(mapped)
    vcell_of = {c.name: c for c in cells}

    # -- 1. projection: keep every instance of every clean original -----
    work: List[_WorkBlock] = []
    covered: Set[str] = set()
    prev_home: Dict[str, int] = {}
    for position, block in enumerate(previous.blocks):
        wb = _WorkBlock(index=block.index, device=block.device)
        for name, orig, pins_in, pins_out in zip(
            block.cells, block.originals, block.cell_inputs, block.cell_outputs
        ):
            if orig in vcell_of and orig not in dirty.cells:
                wb.add(name, orig, pins_in, pins_out)
                covered.add(orig)
            else:
                prev_home.setdefault(orig, position)
        work.append(wb)

    # Pads: previous placement wins for every still-required pad.
    required = {t.name: t.net for t in terms}
    prev_pad_block = {
        pad: block.index for block in previous.blocks for pad in block.pads
    }
    placed_pads: Set[str] = set()
    for pad, net in required.items():
        home = prev_pad_block.get(pad)
        if home is not None:
            work[home].pads.append(pad)
            work[home].pad_nets.add(net)
            placed_pads.add(pad)

    # -- 2. placement of uncovered cells --------------------------------
    # A dirty cell that existed before goes back to its previous home
    # when there is room: the previous solution was feasible (IOBs
    # included) with it there, so restoring the old structure keeps the
    # terminal pressure of a small edit near zero.  Cells with no
    # previous home (delta-added) fall back to the greediest block by
    # shared nets.
    block_nets = [wb.nets() for wb in work]
    uncovered = [c for c in cells if c.name not in covered]
    for vc in uncovered:
        pins = set(vc.inputs) | set(vc.outputs)
        home = prev_home.get(vc.name)
        if home is not None and work[home].n_clbs < work[home].device.max_clbs:
            choice = home
        else:
            best: Optional[Tuple[Tuple[int, int], int]] = None
            for wb, nets in zip(work, block_nets):
                if wb.n_clbs >= wb.device.max_clbs:
                    continue
                key = (-len(pins & nets), wb.index)
                if best is None or key < best[0]:
                    best = (key, wb.index)
            if best is None:
                return _decline(info, "no block has CLB capacity left")
            choice = best[1]
        target = work[choice]
        target.add(vc.name, vc.name, vc.inputs, vc.outputs)
        block_nets[choice].update(pins)

    # Pads that gained a net (e.g. a rewire made a dead primary input
    # live): join the lowest-index block already touching the net.
    for pad, net in required.items():
        if pad in placed_pads:
            continue
        home = next(
            (wb.index for wb, nets in zip(work, block_nets) if net in nets), 0
        )
        work[home].pads.append(pad)
        work[home].pad_nets.add(net)
        block_nets[home].add(net)

    # Blocks emptied by the delta (every instance dirty, no pads) vanish.
    work = [wb for wb in work if wb.names or wb.pads]
    for i, wb in enumerate(work):
        wb.index = i

    # -- 3. pair-local boundary FM over the dirty frontier --------------
    reg = get_registry()
    pairs = _dirty_pairs(work, dirty.touched_nets)
    moves = 0
    span = (
        reg.span("incr.refine", pairs=len(pairs),
                 dirty_cells=len(dirty.cells))
        if reg.enabled
        else NULL_SPAN
    )
    with span:
        for i, j in pairs:
            if config.budget is not None and config.budget.expired:
                break
            moves += _refine_pair(work, i, j, dirty.cells, config)
    info["pairs_refined"] = len(pairs)
    info["boundary_moves"] = moves

    # -- 4. finalize with the cold path's global accounting -------------
    blocks = [
        BlockResult(
            index=wb.index,
            device=wb.device,  # type: ignore[arg-type]
            cells=list(wb.names),
            originals=list(wb.originals),
            pads=list(wb.pads),
            nets=wb.nets(),
            pad_nets=set(wb.pad_nets),
            cell_inputs=[list(p) for p in wb.inputs],
            cell_outputs=[list(p) for p in wb.outputs],
        )
        for wb in work
    ]
    solution = _finalize(mapped.name, blocks, len(cells), truncated=False)

    if previous.feasible and not solution.feasible:
        # Most commonly IOB overflow: the cold carver packs blocks to
        # the terminal limit (eq.2 maximizes IOB utilization), so on a
        # saturated design even a small edit's newly-cut nets push a
        # block past its device's IOB count -- and only a re-carve can
        # relieve that.  Name the first violated constraint so callers
        # can see why the warm path bailed.
        detail = "constraint violated"
        for usage in solution.cost.blocks:
            if usage.clbs > usage.device.max_clbs:
                detail = (
                    f"{usage.device.name} over CLB capacity "
                    f"({usage.clbs} > {usage.device.max_clbs})"
                )
                break
            if usage.clbs < usage.device.min_clbs:
                detail = (
                    f"{usage.device.name} under CLB utilization floor "
                    f"({usage.clbs} < {usage.device.min_clbs})"
                )
                break
            if usage.terminals > usage.device.terminals:
                detail = (
                    f"{usage.device.name} over IOB capacity "
                    f"({usage.terminals} > {usage.device.terminals})"
                )
                break
        return _decline(info, f"repair left the solution infeasible: {detail}")
    band = 1.0 + config.cost_tolerance
    if solution.cost.total_cost > previous.cost.total_cost * band:
        return _decline(
            info,
            f"repaired cost {solution.cost.total_cost:.0f} outside the "
            f"band of previous {previous.cost.total_cost:.0f}",
        )
    info["mode"] = "warm"
    info["cost"] = solution.cost.total_cost
    info["previous_cost"] = previous.cost.total_cost
    if reg.enabled:
        reg.counter("incr.dirty_cells").inc(len(dirty.cells))
        reg.counter("incr.boundary_moves").inc(moves)
    return solution, info


def _dirty_pairs(
    work: Sequence[_WorkBlock], touched_nets: Set[str]
) -> List[Tuple[int, int]]:
    """Block pairs sharing a net the delta touched, in deterministic order."""
    homes: Dict[str, Set[int]] = {}
    for wb in work:
        for net in wb.nets():
            if net in touched_nets:
                homes.setdefault(net, set()).add(wb.index)
    pairs: Set[Tuple[int, int]] = set()
    for blocks_of_net in homes.values():
        ordered = sorted(blocks_of_net)
        for a in range(len(ordered)):
            for b in range(a + 1, len(ordered)):
                pairs.add((ordered[a], ordered[b]))
    return sorted(pairs)


def _refine_pair(
    work: List[_WorkBlock],
    i: int,
    j: int,
    dirty_cells: Set[str],
    config: IncrementalConfig,
) -> int:
    """Boundary FM between blocks ``i`` and ``j``; only instances whose
    original is dirty may move.  Returns the number of migrations."""
    wi, wj = work[i], work[j]
    total = wi.n_clbs + wj.n_clbs
    lo0 = max(1, total - wj.device.max_clbs)
    hi0 = min(wi.device.max_clbs, total - 1)
    if lo0 > hi0 or total < 2:
        return 0

    outside: Set[str] = set()
    for wb in work:
        if wb.index in (i, j):
            continue
        outside.update(wb.nets())

    hg = Hypergraph(f"incr:{i}:{j}")
    net_obj: Dict[str, object] = {}

    def net_of(name: str):
        if name not in net_obj:
            net_obj[name] = hg.add_net(name)
        return net_obj[name]

    fixed: Dict[int, int] = {}
    initial: List[int] = []
    movable_nodes: List[Tuple[int, int, int]] = []  # (node, side, slot)
    for side, wb in ((0, wi), (1, wj)):
        for slot, name in enumerate(wb.names):
            node = hg.add_node(name, NodeKind.CELL)
            for net in wb.inputs[slot]:
                hg.connect_input(node, net_of(net))
            for net in wb.outputs[slot]:
                hg.connect_output(node, net_of(net))
            initial.append(side)
            if wb.originals[slot] in dirty_cells:
                movable_nodes.append((node.index, side, slot))
            else:
                fixed[node.index] = side
        for pad in wb.pads:
            kind = NodeKind.PI if pad.startswith("pi:") else NodeKind.PO
            node = hg.add_node(pad, kind)
            net = net_of(pad.split(":", 1)[1])
            if kind is NodeKind.PI:
                hg.connect_output(node, net)
            else:
                hg.connect_input(node, net)
            initial.append(side)
            fixed[node.index] = side
    if not movable_nodes:
        return 0
    # Nets leaving the pair are permanently cut: one pseudo terminal per
    # side keeps FM from "rescuing" them by piling pins onto one side.
    for name in sorted(set(net_obj) & outside):
        for side in (0, 1):
            node = hg.add_node(f"ext{side}:{name}", NodeKind.PO)
            hg.connect_input(node, net_obj[name])
            initial.append(side)
            fixed[node.index] = side

    result = fm_bipartition(
        hg,
        FMConfig(
            seed=config.seed,
            max_passes=config.max_passes,
            side0_bounds=(lo0, hi0),
            fixed=fixed,
            budget=config.budget,
            boundary_refine=True,
        ),
        initial=initial,
    )

    # Apply migrations, popping from the highest slot down so earlier
    # slot numbers stay valid.
    migrations = [
        (node, side, slot)
        for node, side, slot in movable_nodes
        if result.assignment[node] != side
    ]
    moves = 0
    for _, side, slot in sorted(migrations, key=lambda m: -m[2]):
        src, dst = (wi, wj) if side == 0 else (wj, wi)
        name, orig, pins_in, pins_out = src.pop(slot)
        dst.add(name, orig, pins_in, pins_out)
        moves += 1
    return moves


__all__ = [
    "DEFAULT_COST_TOLERANCE",
    "DEFAULT_MAX_DIRTY_FRACTION",
    "IncrementalConfig",
    "incremental_partition",
]
