"""Serializable result records for the two end-to-end experiments."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List


@dataclass
class BipartitionReport:
    """Outcome of a multi-run min-cut bipartitioning experiment (Table III)."""

    circuit: str
    algorithm: str  # "fm" | "fm+functional" | "fm+traditional"
    runs: int
    cuts: List[int]
    replicated_counts: List[int]
    elapsed_seconds: float
    n_cells: int

    @property
    def best_cut(self) -> int:
        return min(self.cuts)

    @property
    def avg_cut(self) -> float:
        return sum(self.cuts) / len(self.cuts)

    @property
    def avg_replicated(self) -> float:
        if not self.replicated_counts:
            return 0.0
        return sum(self.replicated_counts) / len(self.replicated_counts)

    def as_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "algorithm": self.algorithm,
            "runs": self.runs,
            "best_cut": self.best_cut,
            "avg_cut": round(self.avg_cut, 2),
            "avg_replicated": round(self.avg_replicated, 2),
            "elapsed_s": round(self.elapsed_seconds, 3),
            "cells": self.n_cells,
        }


@dataclass
class KWayReport:
    """Outcome of one heterogeneous k-way partitioning run (Tables IV-VII)."""

    circuit: str
    threshold: float
    k: int
    total_cost: float
    device_counts: Dict[str, int]
    avg_clb_utilization: float
    avg_iob_utilization: float
    replicated_fraction: float
    n_cells: int
    n_instances: int
    feasible: bool
    elapsed_seconds: float

    def as_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["threshold"] = "inf" if self.threshold == float("inf") else self.threshold
        return data


def dump_reports(reports: List[object], path: str) -> None:
    """Write a list of report dataclasses to a JSON file."""
    payload = [r.as_dict() for r in reports]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
