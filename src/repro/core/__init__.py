"""High-level orchestration: netlist -> mapping -> hypergraph -> partitioning.

:mod:`repro.core.flow` wires the substrates into the two end-to-end flows the
paper evaluates (min-cut bipartitioning with/without functional replication,
and heterogeneous-device k-way partitioning); :mod:`repro.core.results`
defines the serializable result records.
"""

from repro.core.flow import (
    map_circuit,
    bipartition_experiment,
    kway_experiment,
)
from repro.core.results import BipartitionReport, KWayReport

__all__ = [
    "map_circuit",
    "bipartition_experiment",
    "kway_experiment",
    "BipartitionReport",
    "KWayReport",
]
