"""End-to-end flows: the two experiments of the paper's Section IV.

* :func:`bipartition_experiment` -- experiment 1: bipartition into two
  equal-sized partitions minimizing the cut set with terminal constraints
  completely relaxed, comparing plain F-M min-cut against F-M min-cut with
  functional replication over N runs (Table III).
* :func:`kway_experiment` -- experiment 2: the k-way device-cost/interconnect
  flow for a given threshold replication potential T (Tables IV-VII).
"""

from __future__ import annotations

import time
import warnings
from typing import Optional, Union

from repro.core.results import BipartitionReport, KWayReport
from repro.hypergraph.build import build_hypergraph
from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.netlist import Netlist
from repro.partition.devices import DeviceLibrary, XC3000_LIBRARY
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.fm_replication import (
    FUNCTIONAL,
    NONE,
    TRADITIONAL,
    ReplicationConfig,
    replication_bipartition,
)
from repro.partition.kway import KWayConfig, KWaySolution, best_heterogeneous_partition
from repro.partition.multilevel import (
    MultilevelConfig,
    resolve_multilevel,
    vcycle_bipartition,
)
from repro.robust.budget import Budget
from repro.robust.errors import ConfigError
from repro.techmap.mapped import MappedNetlist, technology_map

#: Engines accepted by :func:`bipartition_experiment`, strongest first.
BIPARTITION_ALGORITHMS = ("fm+functional", "fm+traditional", "fm")

#: Canonical algorithm name -> replication style of the inner engine.
_ALGORITHM_STYLE = {
    "fm+functional": FUNCTIONAL,
    "fm+traditional": TRADITIONAL,
    "fm": NONE,
}


def _resolve_style(algorithm: str, style: Optional[str], caller: str) -> str:
    """Map the canonical ``algorithm`` name to an engine style, honouring
    the deprecated ``style=`` keyword when a caller still passes it."""
    if style is not None:
        warnings.warn(
            f"{caller}(style=...) is deprecated; use "
            "algorithm='fm+functional'|'fm+traditional'|'fm'",
            DeprecationWarning,
            stacklevel=3,
        )
        return style
    if algorithm not in _ALGORITHM_STYLE:
        raise ConfigError(f"unknown algorithm {algorithm!r}")
    return _ALGORITHM_STYLE[algorithm]


def map_circuit(circuit: Union[str, Netlist], scale: float = 1.0, seed: int = 1994) -> MappedNetlist:
    """Resolve a benchmark name or netlist into a mapped netlist."""
    if isinstance(circuit, str):
        circuit = benchmark_circuit(circuit, scale=scale, seed=seed)
    return technology_map(circuit)


def bipartition_experiment(
    mapped: MappedNetlist,
    algorithm: str = "fm+functional",
    runs: int = 20,
    threshold: Union[int, float] = 0,
    seed: int = 0,
    balance_tolerance: float = 0.02,
    max_passes: int = 16,
    max_growth: Optional[float] = None,
    budget: Optional[Budget] = None,
    jobs: int = 1,
    multilevel: Optional[bool] = None,
) -> BipartitionReport:
    """Experiment 1: N equal-size min-cut bipartitioning runs.

    ``algorithm`` is one of ``"fm"`` (the [15] baseline), ``"fm+functional"``
    (this paper) or ``"fm+traditional"`` (the [13]-style ablation).
    Terminal constraints are relaxed by building the hypergraph without
    terminal nodes, exactly as the paper's first experiment does.

    A ``budget`` is threaded into every inner run (which then winds down
    cooperatively) and checked between runs: when it expires, the report
    covers the runs completed so far (always at least one).

    ``jobs > 1`` fans the runs out over a process pool; run seeds and the
    result order are identical to the sequential loop, so the report is
    deterministic per seed (as long as no budget expires mid-sweep).

    ``multilevel`` is tri-state: ``True`` runs every inner solve as a
    coarsen-solve-uncoarsen V-cycle (replication algorithms finish with a
    replication pass at the finest level), ``False`` keeps the flat
    engines, ``None`` (default) auto-enables the V-cycle on large
    netlists (:data:`repro.partition.multilevel.MULTILEVEL_AUTO_MIN_CELLS`).
    """
    if algorithm not in BIPARTITION_ALGORITHMS:
        raise ConfigError(f"unknown algorithm {algorithm!r}")
    hg = build_hypergraph(mapped, include_terminals=False)
    use_ml = resolve_multilevel(multilevel, hg.n_cells)
    cuts = []
    replicated = []
    start = time.perf_counter()
    if use_ml:
        style = _ALGORITHM_STYLE[algorithm]
        base_ml = MultilevelConfig(
            balance_tolerance=balance_tolerance,
            max_passes=max_passes,
            threshold=threshold,
            style=style if algorithm != "fm" else FUNCTIONAL,
            replication_refine=algorithm != "fm",
            max_growth=max_growth,
            budget=budget,
        )
        seeds = [seed * 7919 + run for run in range(runs)]
        if jobs > 1:
            from repro.perf.parallel import parallel_multilevel_results

            results = parallel_multilevel_results(hg, base_ml, seeds, jobs)
        else:
            from dataclasses import replace as _replace

            from repro.hypergraph.compact import CompactHypergraph

            compact = CompactHypergraph.from_hypergraph(hg)
            results = []
            for run_seed in seeds:
                if results and budget is not None and budget.expired:
                    break
                results.append(
                    vcycle_bipartition(
                        hg, _replace(base_ml, seed=run_seed), compact=compact
                    )
                )
        cuts = [r.final_cut for r in results]
        replicated = [
            r.replication.n_replicated if r.replication is not None else 0
            for r in results
        ]
        elapsed = time.perf_counter() - start
        return BipartitionReport(
            circuit=mapped.name,
            algorithm=algorithm,
            runs=len(cuts),
            cuts=cuts,
            replicated_counts=replicated,
            elapsed_seconds=elapsed,
            n_cells=hg.n_cells,
        )
    if jobs > 1:
        from repro.perf.parallel import (
            parallel_fm_results,
            parallel_replication_results,
        )

        seeds = [seed * 7919 + run for run in range(runs)]
        if algorithm == "fm":
            base = FMConfig(
                balance_tolerance=balance_tolerance,
                max_passes=max_passes,
                budget=budget,
            )
            results = parallel_fm_results(hg, base, seeds, jobs)
            cuts = [r.cut_size for r in results]
            replicated = [0] * len(results)
        else:
            style = FUNCTIONAL if algorithm == "fm+functional" else TRADITIONAL
            base = ReplicationConfig(
                threshold=threshold,
                style=style,
                balance_tolerance=balance_tolerance,
                max_passes=max_passes,
                max_growth=max_growth,
                budget=budget,
            )
            results = parallel_replication_results(hg, base, seeds, jobs)
            cuts = [r.cut_size for r in results]
            replicated = [r.n_replicated for r in results]
        elapsed = time.perf_counter() - start
        return BipartitionReport(
            circuit=mapped.name,
            algorithm=algorithm,
            runs=len(cuts),
            cuts=cuts,
            replicated_counts=replicated,
            elapsed_seconds=elapsed,
            n_cells=hg.n_cells,
        )
    for run in range(runs):
        if cuts and budget is not None and budget.expired:
            break
        run_seed = seed * 7919 + run
        if algorithm == "fm":
            result = fm_bipartition(
                hg,
                FMConfig(
                    seed=run_seed,
                    balance_tolerance=balance_tolerance,
                    max_passes=max_passes,
                    budget=budget,
                ),
            )
            cuts.append(result.cut_size)
            replicated.append(0)
        else:
            style = FUNCTIONAL if algorithm == "fm+functional" else TRADITIONAL
            result = replication_bipartition(
                hg,
                ReplicationConfig(
                    seed=run_seed,
                    threshold=threshold,
                    style=style,
                    balance_tolerance=balance_tolerance,
                    max_passes=max_passes,
                    max_growth=max_growth,
                    budget=budget,
                ),
            )
            cuts.append(result.cut_size)
            replicated.append(result.n_replicated)
    elapsed = time.perf_counter() - start
    return BipartitionReport(
        circuit=mapped.name,
        algorithm=algorithm,
        runs=len(cuts),
        cuts=cuts,
        replicated_counts=replicated,
        elapsed_seconds=elapsed,
        n_cells=hg.n_cells,
    )


def kway_experiment(
    mapped: MappedNetlist,
    threshold: Union[int, float],
    library: Optional[DeviceLibrary] = None,
    n_solutions: int = 2,
    seed: int = 0,
    seeds_per_carve: int = 3,
    algorithm: str = "fm+functional",
    devices_per_carve: int = 3,
    budget: Optional[Budget] = None,
    jobs: int = 1,
    style: Optional[str] = None,
    multilevel: Optional[bool] = None,
) -> KWayReport:
    """Experiment 2: one k-way heterogeneous partitioning data point.

    ``threshold=float('inf')`` reproduces the no-replication baseline
    (the "In [3]" columns of Tables IV-VII).  A graceful ``budget`` makes
    the flow return its best (possibly truncated) solution at expiry.
    ``jobs > 1`` fans each carve level's candidate scan over a process
    pool (deterministic per seed).

    ``algorithm`` takes the same names as :func:`bipartition_experiment`
    (``"fm+functional"``, ``"fm+traditional"``, ``"fm"``); ``style=`` is
    a deprecated alias taking raw engine styles.
    """
    resolved = _resolve_style(algorithm, style, "kway_experiment")
    if threshold == float("inf"):
        resolved = NONE
    config = KWayConfig(
        library=library or XC3000_LIBRARY,
        threshold=threshold,
        style=resolved,
        seed=seed,
        seeds_per_carve=seeds_per_carve,
        devices_per_carve=devices_per_carve,
        budget=budget,
        jobs=jobs,
        multilevel=multilevel,
    )
    start = time.perf_counter()
    solution = best_heterogeneous_partition(mapped, config, n_solutions=n_solutions)
    elapsed = time.perf_counter() - start
    return KWayReport(
        circuit=mapped.name,
        threshold=float(threshold),
        k=solution.k,
        total_cost=solution.cost.total_cost,
        device_counts=solution.cost.device_counts,
        avg_clb_utilization=solution.cost.avg_clb_utilization,
        avg_iob_utilization=solution.cost.avg_iob_utilization,
        replicated_fraction=solution.replicated_fraction,
        n_cells=solution.n_original_cells,
        n_instances=solution.n_instances,
        feasible=solution.feasible,
        elapsed_seconds=elapsed,
    )


def kway_solution(
    mapped: MappedNetlist,
    threshold: Union[int, float],
    library: Optional[DeviceLibrary] = None,
    n_solutions: int = 2,
    seed: int = 0,
    seeds_per_carve: int = 3,
    algorithm: str = "fm+functional",
    devices_per_carve: int = 3,
    budget: Optional[Budget] = None,
    jobs: int = 1,
    style: Optional[str] = None,
    multilevel: Optional[bool] = None,
) -> KWaySolution:
    """Like :func:`kway_experiment` but returning the full solution object.

    ``style=`` is a deprecated alias of ``algorithm=`` taking raw engine
    styles.
    """
    resolved = _resolve_style(algorithm, style, "kway_solution")
    if threshold == float("inf"):
        resolved = NONE
    config = KWayConfig(
        library=library or XC3000_LIBRARY,
        threshold=threshold,
        style=resolved,
        seed=seed,
        seeds_per_carve=seeds_per_carve,
        devices_per_carve=devices_per_carve,
        budget=budget,
        jobs=jobs,
        multilevel=multilevel,
    )
    return best_heterogeneous_partition(mapped, config, n_solutions=n_solutions)
