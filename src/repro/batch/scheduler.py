"""The batch scheduler: cache-deduplicated, deadline-aware job dispatch.

:func:`run_batch` drives every job of a manifest to an outcome:

1. **Expansion** -- the manifest becomes concrete
   :class:`~repro.batch.manifest.BatchJob` instances (seeds unrolled).
2. **Deduplication** -- jobs with the same cache identity (verb x
   netlist x canonical params x seed) are split into one *primary* per
   identity and its *duplicates*.  Primaries run first; duplicates run
   in a second wave so they land on the entry the primary just stored
   -- a guaranteed cache hit instead of a redundant solve.
3. **Ordering** -- primaries are dispatched priority-first (higher
   ``priority`` wins, manifest order breaks ties) with same-netlist
   jobs kept adjacent: the mapped-netlist build is the shared prefix of
   every job on that netlist, and both the worker memo
   (:mod:`repro.batch.worker`) and the parent's sequential path reuse it
   only across consecutive jobs.
4. **Dispatch** -- ``jobs <= 1`` executes in-process; otherwise a
   :class:`~repro.perf.parallel.BatchJobPool` fans jobs out, each worker
   sharing the batch's on-disk solution cache.  Per-job resilience
   (deadline/max_retries/fallback from the manifest) happens *inside*
   the verb via :class:`~repro.robust.runner.ResilientRunner`; the
   scheduler's own ``deadline`` is a global
   :class:`~repro.robust.budget.Budget` -- jobs that cannot start (or
   finish being collected) before it expires are reported ``skipped``,
   never silently dropped.  While collecting, each outstanding job is
   waited on in fair :meth:`~repro.robust.budget.Budget.share` slices.

The resulting :class:`BatchReport` carries per-job verdicts, the cache
hit rate and the wall-clock the cache saved; its ``stable_view`` is the
run-to-run comparable slice that ``repro batch check`` diffs for
bit-identical repeatability.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.batch.manifest import (
    BatchJob,
    REPORT_SCHEMA_NAME,
    expand_manifest,
)
from repro.batch.worker import (
    JobOutcome,
    execute_job,
    failed_outcome,
    skipped_outcome,
)
from repro.obs.ledger import canonical_json
from repro.obs.metrics import get_registry
from repro.robust.budget import Budget

#: Event callback type: receives small progress dicts as the batch runs.
ProgressFn = Callable[[Dict[str, Any]], None]


@dataclass
class BatchReport:
    """Everything a finished batch knows about itself."""

    name: str
    cache_policy: str
    jobs: int
    workers: int
    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    deduplicated: int = 0

    # -- aggregate views ------------------------------------------------
    def counts(self, attr: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for outcome in self.outcomes:
            key = getattr(outcome, attr)
            out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items()))

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_status == "hit")

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.status in ("ok", "degraded"))

    @property
    def hit_rate(self) -> float:
        """Cache hits over completed jobs (0.0 when nothing completed)."""
        done = self.completed
        return self.hits / done if done else 0.0

    @property
    def saved_seconds(self) -> float:
        """Solve time the cache avoided re-spending, summed over hits."""
        return sum(o.saved_seconds for o in self.outcomes)

    def stable_view(self) -> List[Dict[str, Any]]:
        """Run-to-run comparable per-job results, sorted by job id."""
        return sorted(
            (o.stable_view() for o in self.outcomes),
            key=lambda v: v["job_id"],
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_NAME,
            "name": self.name,
            "generated_ts": time.time(),
            "cache_policy": self.cache_policy,
            "jobs": self.jobs,
            "workers": self.workers,
            "deduplicated": self.deduplicated,
            "wall_seconds": self.wall_seconds,
            "saved_seconds": self.saved_seconds,
            "cache": {
                "hit_rate": self.hit_rate,
                **{f"{k}": v for k, v in self.counts("cache_status").items()},
            },
            "verdicts": self.counts("status"),
            "outcomes": [o.as_dict() for o in self.outcomes],
            "stable_view": self.stable_view(),
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def summary(self) -> str:
        verdicts = ", ".join(f"{k}={v}" for k, v in self.counts("status").items())
        return (
            f"batch {self.name!r}: {self.jobs} jobs ({verdicts}); "
            f"cache hit rate {self.hit_rate:.0%}, "
            f"saved {self.saved_seconds:.2f}s solve time, "
            f"wall {self.wall_seconds:.2f}s"
        )


def job_identity(job: BatchJob) -> str:
    """The dedupe identity of a job: everything its cache key hashes.

    Two jobs with equal identity resolve to the same cache entry, so
    only one of them (the *primary*) needs to solve; the scheduler
    computes this without technology-mapping anything in the parent.
    """
    return canonical_json(
        {
            "verb": job.verb,
            "circuit": job.circuit,
            "seed": job.seed,
            "params": job.params,
        }
    )


def order_jobs(jobs: List[BatchJob]) -> Tuple[List[BatchJob], List[BatchJob]]:
    """Split into dispatch-ordered (primaries, duplicates).

    Primaries are grouped by netlist (shared mapping build), groups
    ordered by their best priority then first appearance, jobs inside a
    group by priority then manifest order.
    """
    primaries: List[BatchJob] = []
    duplicates: List[BatchJob] = []
    seen: set = set()
    for job in jobs:
        ident = job_identity(job)
        if ident in seen:
            duplicates.append(job)
        else:
            seen.add(ident)
            primaries.append(job)

    group_rank: Dict[tuple, Tuple[int, int]] = {}
    for job in primaries:
        nid = job.netlist_id
        best = group_rank.get(nid)
        cand = (-job.priority, job.index)
        if best is None or cand < best:
            group_rank[nid] = cand
    primaries.sort(
        key=lambda j: (group_rank[j.netlist_id], -j.priority, j.index)
    )
    duplicates.sort(key=lambda j: (-j.priority, j.index))
    return primaries, duplicates


# Progress fan-out is serialized: several dispatch threads (service
# dispatchers, the cluster scheduler) may drive waves against the same
# callback/registry concurrently, and a progress stream with interleaved
# or torn lines is useless to a follower.
_EMIT_LOCK = threading.Lock()


def _emit(
    on_event: Optional[ProgressFn],
    payload: Dict[str, Any],
    trace: Optional[str] = None,
) -> None:
    with _EMIT_LOCK:
        if on_event is not None:
            on_event(payload)
        reg = get_registry()
        if reg.enabled:
            # "name" would collide with emit_event's positional event name.
            fields = {
                ("batch_name" if k == "name" else k): v
                for k, v in payload.items()
                if k != "event"
            }
            event = payload["event"]
            if not event.startswith("batch."):
                event = f"batch.{event}"
            # Per-job events carry the dispatching request's trace id so
            # scheduler decisions line up with the solve on one timeline.
            with reg.trace_scope(trace):
                reg.emit_event(event, **fields)


def _run_wave_sequential(
    wave: List[BatchJob],
    cache: str,
    budget: Optional[Budget],
    on_event: Optional[ProgressFn],
) -> List[JobOutcome]:
    outcomes: List[JobOutcome] = []
    for job in wave:
        if budget is not None and budget.expired:
            outcomes.append(skipped_outcome(job, "batch deadline expired"))
            _emit(on_event, {"event": "job.skipped", "job_id": job.job_id},
                  trace=job.trace_id)
            continue
        _emit(on_event, {"event": "job.start", "job_id": job.job_id},
              trace=job.trace_id)
        outcome = execute_job(job, cache=cache)
        outcomes.append(outcome)
        _emit(on_event, {
            "event": "job.done",
            "job_id": job.job_id,
            "status": outcome.status,
            "cache_status": outcome.cache_status,
            "wall_seconds": outcome.wall_seconds,
        }, trace=job.trace_id)
    return outcomes


def _run_wave_pool(
    wave: List[BatchJob],
    pool: Any,
    budget: Optional[Budget],
    on_event: Optional[ProgressFn],
) -> List[JobOutcome]:
    pending: List[Tuple[BatchJob, Any]] = []
    for job in wave:
        if budget is not None and budget.expired:
            break
        _emit(on_event, {"event": "job.start", "job_id": job.job_id},
              trace=job.trace_id)
        pending.append((job, pool.submit(job)))
    outcomes: List[JobOutcome] = []
    expired = False
    for n, (job, future) in enumerate(pending):
        outcome: Optional[JobOutcome] = None
        while outcome is None:
            if expired or (budget is not None and budget.expired):
                expired = True
                future.cancel()
                outcome = skipped_outcome(job, "batch deadline expired")
                break
            # Fair wait: at most this job's even share of the remaining
            # global budget per slice, re-checking expiry between slices.
            slice_s = None
            if budget is not None:
                slice_s = max(0.05, budget.share(len(pending) - n) or 0.0)
            try:
                outcome = pool.collect(future, timeout=slice_s)
            except FuturesTimeout:
                continue
            except Exception as exc:  # noqa: BLE001 - worker-death boundary
                # A worker died hard (BrokenProcessPool, os._exit, OOM):
                # the job gets a failed verdict and the batch keeps
                # reporting -- remaining futures of the broken pool
                # resolve the same way instead of crashing the run.
                outcome = failed_outcome(
                    job, f"worker died: {type(exc).__name__}: {exc}"
                )
        outcomes.append(outcome)
        _emit(on_event, {
            "event": "job.done" if outcome.status != "skipped" else "job.skipped",
            "job_id": job.job_id,
            "status": outcome.status,
            "cache_status": outcome.cache_status,
            "wall_seconds": outcome.wall_seconds,
        }, trace=job.trace_id)
    for job in wave[len(pending):]:
        outcomes.append(skipped_outcome(job, "batch deadline expired"))
        _emit(on_event, {"event": "job.skipped", "job_id": job.job_id},
              trace=job.trace_id)
    return outcomes


def run_batch(
    manifest: Dict[str, Any],
    jobs: int = 1,
    cache: str = "use",
    cache_dir: Optional[str] = None,
    deadline: Optional[float] = None,
    on_event: Optional[ProgressFn] = None,
    cluster_dir: Optional[str] = None,
) -> BatchReport:
    """Run every job of ``manifest``; returns the finished report.

    ``jobs`` is the worker-process count (``<= 1`` runs in-process);
    ``cache`` is the policy handed to every verb call
    (``"use"`` | ``"refresh"`` | ``"off"``); ``cache_dir`` overrides the
    resolved store location; ``deadline`` is the global wall-clock
    budget in seconds.  ``on_event`` receives progress dicts
    (``job.start`` / ``job.done`` / ``job.skipped`` / ``batch.done``);
    the same events go to the observability registry when tracing.
    ``cluster_dir`` points the run at an existing ``repro.cluster``
    deployment: every solve (in-process and pool workers alike) then
    reads/writes the cluster's quorum-replicated cache instead of a
    single local store.
    """
    from repro.cache.store import SolutionCache, resolve_cache, use_cache

    start = time.perf_counter()
    expanded = expand_manifest(manifest)
    primaries, duplicates = order_jobs(expanded)
    budget = Budget(deadline) if deadline is not None else None
    store: Optional[SolutionCache] = None
    if cache != "off":
        if cluster_dir:
            from repro.cluster.admin import load_cluster

            store = load_cluster(cluster_dir).store
        else:
            store = SolutionCache(cache_dir) if cache_dir else resolve_cache()

    if jobs <= 1 or len(primaries) <= 1:
        def run_wave(wave: List[BatchJob], policy: str) -> List[JobOutcome]:
            if store is None:
                return _run_wave_sequential(wave, policy, budget, on_event)
            with use_cache(store):
                return _run_wave_sequential(wave, policy, budget, on_event)

        outcomes = run_wave(primaries, cache)
        # Duplicates re-read what the primaries stored; with the cache
        # off there is nothing to reuse, so they solve like primaries.
        outcomes += run_wave(duplicates, "use" if cache != "off" else "off")
        workers = 1
    else:
        from repro.perf.parallel import BatchJobPool, resolve_jobs

        workers = min(resolve_jobs(jobs), len(primaries))
        pool_dir = None
        if store is not None and not cluster_dir:
            pool_dir = store.root
        with BatchJobPool(
            pool_dir, cache, workers, cluster_dir=cluster_dir
        ) as pool:
            outcomes = _run_wave_pool(primaries, pool, budget, on_event)
        if duplicates:
            dup_policy = "use" if cache != "off" else "off"
            with BatchJobPool(
                pool_dir,
                dup_policy,
                min(workers, len(duplicates)),
                cluster_dir=cluster_dir,
            ) as pool:
                outcomes += _run_wave_pool(duplicates, pool, budget, on_event)

    by_index = {job.job_id: job.index for job in expanded}
    outcomes.sort(key=lambda o: by_index.get(o.job_id, 1 << 30))
    report = BatchReport(
        name=str(manifest.get("name", "batch")),
        cache_policy=cache,
        jobs=len(expanded),
        workers=workers,
        outcomes=outcomes,
        wall_seconds=time.perf_counter() - start,
        deduplicated=len(duplicates),
    )
    reg = get_registry()
    reg.counter("batch.jobs").inc(len(expanded))
    _emit(on_event, {
        "event": "batch.done",
        "name": report.name,
        "jobs": report.jobs,
        "hit_rate": report.hit_rate,
        "saved_seconds": report.saved_seconds,
        "wall_seconds": report.wall_seconds,
    })
    return report


def check_reports(
    first: Dict[str, Any],
    second: Dict[str, Any],
    min_hit_rate: float = 0.9,
) -> List[str]:
    """Repeatability gate between two batch report dicts.

    Returns problems (empty = pass): the second run must reach
    ``min_hit_rate`` cache hits, and both runs' stable views -- job
    verdicts plus full quality vectors, original solve times included
    -- must be bit-identical.
    """
    problems: List[str] = []
    rate = first_rate = None
    try:
        first_rate = float(first["cache"]["hit_rate"])
        rate = float(second["cache"]["hit_rate"])
    except (KeyError, TypeError, ValueError):
        problems.append("report missing cache.hit_rate")
    if rate is not None and rate < min_hit_rate:
        problems.append(
            f"second run hit rate {rate:.0%} below required {min_hit_rate:.0%} "
            f"(first run: {first_rate:.0%})"
        )
    a = first.get("stable_view")
    b = second.get("stable_view")
    if a is None or b is None:
        problems.append("report missing stable_view")
    elif canonical_json(a) != canonical_json(b):
        ids_a = {v.get("job_id"): v for v in a}
        ids_b = {v.get("job_id"): v for v in b}
        for job_id in sorted(set(ids_a) | set(ids_b)):
            va, vb = ids_a.get(job_id), ids_b.get(job_id)
            if va is None or vb is None:
                problems.append(f"{job_id}: present in only one report")
            elif canonical_json(va) != canonical_json(vb):
                problems.append(f"{job_id}: results differ between runs")
    return problems


__all__ = [
    "BatchReport",
    "check_reports",
    "job_identity",
    "order_jobs",
    "run_batch",
]
