"""Batch execution of many solver jobs against the solution cache.

``repro.batch`` turns a declarative manifest (netlist x device-library x
algorithm x seeds; :mod:`repro.batch.manifest`) into scheduled work
(:mod:`repro.batch.scheduler`): jobs are deduplicated against the
content-addressed solution cache (:mod:`repro.cache`), ordered so
shared-netlist work stays adjacent, fanned out over the
:class:`~repro.perf.parallel.BatchJobPool` process pool with a global
deadline budget and per-job resilient-runner policies, and distilled
into a batch report whose ``stable_view`` must reproduce bit-identically
between a cold and a warm (all-cache-hit) run.

The ``repro batch`` CLI (``run`` / ``manifest`` / ``check``) is the
command-line surface; ``docs/CACHING.md`` documents the manifest and
report formats.
"""

from repro.batch.manifest import (
    BatchJob,
    MANIFEST_SCHEMA_NAME,
    ManifestError,
    REPORT_SCHEMA_NAME,
    expand_manifest,
    load_manifest,
)
from repro.batch.scheduler import BatchReport, check_reports, run_batch
from repro.batch.worker import JobOutcome, execute_job

__all__ = [
    "BatchJob",
    "BatchReport",
    "JobOutcome",
    "MANIFEST_SCHEMA_NAME",
    "ManifestError",
    "REPORT_SCHEMA_NAME",
    "check_reports",
    "execute_job",
    "expand_manifest",
    "load_manifest",
    "run_batch",
]
