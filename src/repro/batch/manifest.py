"""Batch manifests: many solver jobs as one declarative JSON document.

A manifest (schema ``repro-batch-manifest/1``) describes a sweep --
netlist x device-library x algorithm x seeds -- as data::

    {
      "schema": "repro-batch-manifest/1",
      "name": "tables4to7-quick",
      "defaults": {"scale": 0.25, "algorithm": "fm+functional"},
      "jobs": [
        {"verb": "partition", "circuit": "s5378", "threshold": "inf",
         "seeds": [0, 1], "priority": 5},
        {"verb": "bipartition", "circuit": "c3540", "runs": 10}
      ]
    }

``defaults`` apply to every job; a job's own fields win.  A ``seeds``
list expands one entry into one :class:`BatchJob` per seed (a scalar
``seed`` is also accepted).  ``threshold`` accepts the paper's
``T = inf`` baseline as the string ``"inf"`` (strict JSON has no
infinity literal).  Per-job ``deadline`` / ``max_retries`` / ``fallback``
route each job through the resilient runner exactly as the
``repro.api`` keyword arguments do -- and, like those, they are part of
the job's cache identity.

:func:`expand_manifest` yields fully-resolved jobs in manifest order;
:func:`load_manifest` reads and validates a file.  The scheduler
(:mod:`repro.batch.scheduler`) consumes the jobs; it never re-reads the
manifest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.partition.devices import (
    DeviceLibrary,
    XC3000_LIBRARY,
    XC4000_LIBRARY,
)
from repro.request import PartitionRequest, build_request

#: Manifest identifier expected in the ``schema`` field.
MANIFEST_SCHEMA_NAME = "repro-batch-manifest/1"

#: Report identifier stamped into every batch report.
REPORT_SCHEMA_NAME = "repro-batch-report/1"

#: Verbs a manifest job may use (the cacheable ``repro.api`` verbs).
JOB_VERBS = ("partition", "bipartition")

#: Device libraries resolvable by name in a manifest.
LIBRARIES: Dict[str, DeviceLibrary] = {
    XC3000_LIBRARY.name: XC3000_LIBRARY,
    XC4000_LIBRARY.name: XC4000_LIBRARY,
}

#: Per-verb tunables a job may set (beyond the common fields), with the
#: ``repro.api`` defaults used when neither the job nor ``defaults``
#: supplies them.
_PARTITION_PARAMS: Dict[str, Any] = {
    "threshold": 1,
    "library": "XC3000",
    "n_solutions": 2,
    "seeds_per_carve": 3,
    "devices_per_carve": 3,
}
_BIPARTITION_PARAMS: Dict[str, Any] = {
    "runs": 20,
    "threshold": 0,
    "balance_tolerance": 0.02,
    "max_passes": 16,
    "max_growth": None,
}
_COMMON_PARAMS: Dict[str, Any] = {
    "scale": 1.0,
    "algorithm": "fm+functional",
    "deadline": None,
    "max_retries": None,
    "fallback": None,
    # Tri-state V-cycle knob; accepts the wire spellings "on"/"off"/
    # "auto" as well as the legacy true/false/null.  Part of the cache
    # identity only when it resolves on (see PartitionRequest.config).
    "multilevel": None,
}


class ManifestError(ValueError):
    """A manifest that cannot be expanded into valid jobs."""


@dataclass
class BatchJob:
    """One fully-resolved solver invocation from a manifest."""

    job_id: str
    verb: str  # "partition" | "bipartition"
    circuit: str
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    #: Position in the expanded manifest (stable tie-break for dispatch).
    index: int = 0
    #: Trace-correlation id carried from the submitting request (service
    #: jobs).  Execution metadata only: never part of the job identity
    #: used for dedupe/caching (see ``repro.batch.scheduler.job_identity``).
    trace_id: Optional[str] = None
    #: Sentinel-file path for mid-solve cancellation (service jobs).
    #: Execution metadata like ``trace_id``: the pool worker polls it
    #: through :class:`repro.robust.budget.CancelFlag` and winds down
    #: gracefully when the submitting side creates the file.
    cancel_path: Optional[str] = None

    @property
    def netlist_id(self) -> tuple:
        """The (circuit, scale, mapping seed) triple that determines the
        mapped netlist this job runs on.

        ``repro.api`` maps with ``seed or 1994`` -- at ``scale < 1`` the
        sampled benchmark depends on that seed, so jobs share a netlist
        build (and a netlist hash) only when this triple matches.
        """
        return (self.circuit, float(self.params["scale"]), self.seed or 1994)

    def api_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for the matching ``repro.api`` verb."""
        kwargs = dict(self.params)
        if self.verb == "partition":
            kwargs["library"] = resolve_library(kwargs.get("library"))
        kwargs["seed"] = self.seed
        return kwargs

    def to_request(self) -> PartitionRequest:
        """This job as a canonical :class:`~repro.request.PartitionRequest`.

        The request carries the identity fields only (verb, circuit,
        seed, solver tunables); execution policy (cache, jobs) is the
        scheduler's call and is passed to
        :func:`repro.api.run_request` separately.  Workers execute
        ``job.to_request()`` and the service submits the very same
        document over the wire, so a batch job and a service job with
        equal parameters are bit-identical by construction.
        """
        params = {k: v for k, v in self.params.items() if k != "library"}
        library = self.params.get("library")
        if self.verb == "partition":
            params["library"] = resolve_library(library).name
        try:
            request = build_request(self.verb, self.circuit, seed=self.seed, **params)
        except ValueError as exc:
            raise ManifestError(f"job {self.job_id}: {exc}") from exc
        return request.with_trace(self.trace_id) if self.trace_id else request


def resolve_library(name: Optional[str]) -> DeviceLibrary:
    """A bundled device library by name (``None`` -> XC3000)."""
    if name is None:
        return XC3000_LIBRARY
    try:
        return LIBRARIES[name]
    except KeyError:
        raise ManifestError(
            f"unknown device library {name!r}; known: {sorted(LIBRARIES)}"
        ) from None


def parse_threshold(value: Any) -> Union[int, float]:
    """A job threshold: a number, or ``"inf"`` for the no-replication
    baseline (strict JSON cannot carry the float directly)."""
    if isinstance(value, str):
        if value.lower() in ("inf", "infinity"):
            return float("inf")
        raise ManifestError(f"threshold {value!r} is not a number or 'inf'")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ManifestError(f"threshold {value!r} is not a number or 'inf'")
    return value


def threshold_label(threshold: Union[int, float]) -> str:
    """The manifest/JSON spelling of a threshold (inverse of parsing)."""
    return "inf" if threshold == float("inf") else str(int(threshold))


_META_KEYS = ("verb", "circuit", "seed", "seeds", "priority")

#: Every field any verb knows -- a default outside this set is a typo.
_ALL_PARAMS = set(_COMMON_PARAMS) | set(_PARTITION_PARAMS) | set(_BIPARTITION_PARAMS)


def _job_params(
    verb: str,
    defaults: Dict[str, Any],
    raw: Dict[str, Any],
    where: str,
) -> Dict[str, Any]:
    """Merge job fields over manifest defaults over the api defaults.

    A *default* naming a field the job's verb does not take is silently
    skipped (one ``defaults`` block may serve mixed-verb manifests, e.g.
    ``n_solutions`` alongside bipartition jobs) -- unless no verb knows
    it at all.  A field set on the *job itself* must be valid for its
    verb.
    """
    known = dict(_COMMON_PARAMS)
    known.update(_PARTITION_PARAMS if verb == "partition" else _BIPARTITION_PARAMS)
    params = dict(known)
    for key, value in defaults.items():
        if key in _META_KEYS:
            continue
        if key not in _ALL_PARAMS:
            raise ManifestError(f"{where}: unknown default field {key!r}")
        if key in known:
            params[key] = value
    for key, value in raw.items():
        if key in _META_KEYS:
            continue
        if key not in known:
            raise ManifestError(f"{where}: unknown {verb} field {key!r}")
        params[key] = value
    if "threshold" in params:
        params["threshold"] = parse_threshold(params["threshold"])
    if verb == "partition":
        resolve_library(params["library"])  # validate the name early
    return params


def _job_seeds(raw: Dict[str, Any], where: str) -> List[int]:
    if "seeds" in raw and "seed" in raw:
        raise ManifestError(f"{where}: give either 'seed' or 'seeds', not both")
    seeds = raw.get("seeds", [raw.get("seed", 0)])
    if not isinstance(seeds, list) or not seeds:
        raise ManifestError(f"{where}: 'seeds' must be a non-empty list")
    for seed in seeds:
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ManifestError(f"{where}: seed {seed!r} is not an int")
    return list(seeds)


def expand_manifest(manifest: Dict[str, Any]) -> List[BatchJob]:
    """Validate a manifest dict and expand it into concrete jobs.

    Jobs come back in manifest order (seeds expand in list order); the
    ``job_id`` is ``<verb>:<circuit>:<distinguishing params>:<seed>`` and
    unique within the batch.
    """
    if not isinstance(manifest, dict):
        raise ManifestError(f"manifest is {type(manifest).__name__}, expected object")
    if manifest.get("schema") != MANIFEST_SCHEMA_NAME:
        raise ManifestError(
            f"manifest schema {manifest.get('schema')!r}, "
            f"expected {MANIFEST_SCHEMA_NAME!r}"
        )
    defaults = manifest.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ManifestError("manifest 'defaults' must be an object")
    raw_jobs = manifest.get("jobs")
    if not isinstance(raw_jobs, list) or not raw_jobs:
        raise ManifestError("manifest 'jobs' must be a non-empty list")

    jobs: List[BatchJob] = []
    seen_ids: Dict[str, int] = {}
    for n, raw in enumerate(raw_jobs):
        where = f"jobs[{n}]"
        if not isinstance(raw, dict):
            raise ManifestError(f"{where}: job is not an object")
        meta = dict(defaults)
        if "seed" in raw or "seeds" in raw:
            # A job's own seed spec fully shadows the default's, so a
            # defaults-level "seed" never conflicts with a job "seeds".
            meta.pop("seed", None)
            meta.pop("seeds", None)
        meta.update(raw)
        verb = meta.get("verb", "partition")
        if verb not in JOB_VERBS:
            raise ManifestError(f"{where}: unknown verb {verb!r}; known: {JOB_VERBS}")
        circuit = meta.get("circuit")
        if not isinstance(circuit, str) or not circuit:
            raise ManifestError(f"{where}: 'circuit' must be a non-empty string")
        priority = meta.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ManifestError(f"{where}: 'priority' must be an int")
        params = _job_params(verb, defaults, raw, where)
        for seed in _job_seeds(meta, where):
            if verb == "partition":
                disc = f"T={threshold_label(params['threshold'])}"
            else:
                disc = f"runs={params['runs']}"
            base_id = f"{verb}:{circuit}:{disc}:s{seed}"
            dup = seen_ids.get(base_id, 0)
            seen_ids[base_id] = dup + 1
            job_id = base_id if dup == 0 else f"{base_id}#{dup}"
            jobs.append(
                BatchJob(
                    job_id=job_id,
                    verb=verb,
                    circuit=circuit,
                    seed=seed,
                    params=params,
                    priority=priority,
                    index=len(jobs),
                )
            )
    return jobs


def requests_from_manifest(manifest: Dict[str, Any]) -> List[PartitionRequest]:
    """Expand a manifest into canonical partition requests, in manifest
    order -- the bridge from declarative sweeps to the request API the
    service and :func:`repro.api.run_request` consume."""
    return [job.to_request() for job in expand_manifest(manifest)]


def load_manifest(path: str) -> Dict[str, Any]:
    """Read a manifest file; raises :class:`ManifestError` on bad JSON."""
    try:
        with open(path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
    expand_manifest(manifest)  # validate eagerly, fail at load time
    return manifest


__all__ = [
    "BatchJob",
    "JOB_VERBS",
    "LIBRARIES",
    "MANIFEST_SCHEMA_NAME",
    "ManifestError",
    "REPORT_SCHEMA_NAME",
    "expand_manifest",
    "load_manifest",
    "parse_threshold",
    "requests_from_manifest",
    "resolve_library",
    "threshold_label",
]
