"""Per-job execution: the function a batch worker runs for one job.

:func:`execute_job` turns a :class:`~repro.batch.manifest.BatchJob` into
a :class:`JobOutcome` by converting it to a canonical
:class:`~repro.request.PartitionRequest` and executing it through
:func:`repro.api.run_request` with the batch's cache policy.  It runs
identically in the parent process
(``--jobs 1``) and inside a :class:`~repro.perf.parallel.BatchJobPool`
worker; everything it returns is picklable and small (reports and
quality vectors travel, full solutions stay in the on-disk cache).

Workers keep a small per-process memo of mapped netlists, so
consecutive jobs on the same (circuit, scale, seed) triple share one
technology-mapping build -- the scheduler orders same-netlist jobs
adjacently to maximize that reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from repro.batch.manifest import BatchJob
from repro.core.results import KWayReport
from repro.obs import ledger as obs_ledger

#: Mapped-netlist memo entries kept per worker process.
_MEMO_CAP = 4

_MAPPED_MEMO: Dict[Tuple[str, float, int], Any] = {}


@dataclass
class JobOutcome:
    """The picklable result of one batch job."""

    job_id: str
    verb: str
    circuit: str
    seed: int
    #: "ok" | "degraded" (infeasible/truncated solution) | "failed" |
    #: "skipped" (batch deadline expired before dispatch/collection)
    status: str
    #: "hit" | "miss" | "refreshed" | "off"
    cache_status: str = "off"
    key: Optional[str] = None
    #: Solve wall-clock as reported by the verb (the *original* solve
    #: time on a cache hit, so repeated batches report identical values).
    elapsed_seconds: float = 0.0
    #: Actual wall-clock spent by this worker on the job.
    wall_seconds: float = 0.0
    #: Original solve time a cache hit avoided re-spending.
    saved_seconds: float = 0.0
    #: The per-job report (:class:`~repro.core.results.KWayReport` for
    #: partition jobs, :class:`~repro.core.results.BipartitionReport`
    #: for bipartition jobs); ``None`` when the job failed/was skipped.
    report: Optional[Any] = None
    #: The ledger-style quality vector of ``report`` (stable-comparison
    #: material for ``repro batch check``).
    quality: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "verb": self.verb,
            "circuit": self.circuit,
            "seed": self.seed,
            "status": self.status,
            "cache_status": self.cache_status,
            "key": self.key,
            "elapsed_seconds": self.elapsed_seconds,
            "wall_seconds": self.wall_seconds,
            "saved_seconds": self.saved_seconds,
            "quality": self.quality,
            "error": self.error,
        }

    def stable_view(self) -> Dict[str, Any]:
        """The run-to-run comparable slice of this outcome.

        Excludes everything that legitimately varies between a cold and
        a warm batch (cache status, worker wall-clock, entry paths);
        keeps identity, verdict and the full quality vector.
        ``elapsed_seconds`` *is* included: cache hits report the
        original solve time, so it must reproduce bit-identically too.
        """
        return {
            "job_id": self.job_id,
            "verb": self.verb,
            "circuit": self.circuit,
            "seed": self.seed,
            "status": self.status,
            "elapsed_seconds": self.elapsed_seconds,
            "quality": self.quality,
        }


def _mapped_for(job: BatchJob) -> Any:
    """The job's mapped netlist, via the per-process memo."""
    from repro import api

    nid = job.netlist_id
    if nid not in _MAPPED_MEMO:
        if len(_MAPPED_MEMO) >= _MEMO_CAP:
            _MAPPED_MEMO.pop(next(iter(_MAPPED_MEMO)))
        _MAPPED_MEMO[nid] = api.map(
            job.circuit, scale=nid[1], seed=nid[2]
        ).solution
    return _MAPPED_MEMO[nid]


def kway_report_from_solution(
    solution: Any, threshold: float, elapsed_seconds: float
) -> KWayReport:
    """A :class:`KWayReport` row from a full k-way solution (the same
    distillation :func:`repro.core.flow.kway_experiment` performs)."""
    return KWayReport(
        circuit=solution.name,
        threshold=float(threshold),
        k=solution.k,
        total_cost=solution.cost.total_cost,
        device_counts=solution.cost.device_counts,
        avg_clb_utilization=solution.cost.avg_clb_utilization,
        avg_iob_utilization=solution.cost.avg_iob_utilization,
        replicated_fraction=solution.replicated_fraction,
        n_cells=solution.n_original_cells,
        n_instances=solution.n_instances,
        feasible=solution.feasible,
        elapsed_seconds=elapsed_seconds,
    )


def execute_job(job: BatchJob, cache: str = "use") -> JobOutcome:
    """Run one job through ``repro.api`` and distill the outcome.

    Failures are captured, never raised: a batch must report a broken
    job and keep going (the per-job resilient-runner policies inside the
    verb already handled retry/degradation before an exception escapes).
    """
    from repro import api

    start = perf_counter()
    try:
        request = job.to_request()
        mapped = _mapped_for(job)
        # One execution path for every front door: the job becomes a
        # canonical request and runs through the same run_request flow
        # the api verbs, the CLI and the service use (the memoized
        # mapped netlist rides the side-channel).
        result = api.run_request(request, circuit=mapped, cache=cache)
        if job.verb == "partition":
            report = kway_report_from_solution(
                result.solution, request.threshold, result.elapsed_seconds
            )
            quality = obs_ledger.quality_from_kway_report(report)
        else:
            report = result.solution
            quality = obs_ledger.quality_from_bipartition(report)
    except Exception as exc:  # noqa: BLE001 - job isolation boundary
        return JobOutcome(
            job_id=job.job_id,
            verb=job.verb,
            circuit=job.circuit,
            seed=job.seed,
            status="failed",
            wall_seconds=perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    info = result.cache_info or {}
    return JobOutcome(
        job_id=job.job_id,
        verb=job.verb,
        circuit=job.circuit,
        seed=job.seed,
        status="ok" if result.ok else "degraded",
        cache_status=info.get("status", "off"),
        key=info.get("key"),
        elapsed_seconds=result.elapsed_seconds,
        wall_seconds=perf_counter() - start,
        saved_seconds=float(info.get("saved_seconds", 0.0)),
        report=report,
        quality=quality,
    )


def skipped_outcome(job: BatchJob, reason: str) -> JobOutcome:
    """The outcome of a job the scheduler never (fully) ran."""
    return JobOutcome(
        job_id=job.job_id,
        verb=job.verb,
        circuit=job.circuit,
        seed=job.seed,
        status="skipped",
        error=reason,
    )


def failed_outcome(job: BatchJob, reason: str) -> JobOutcome:
    """The outcome of a job whose *worker* died out from under it.

    :func:`execute_job` already converts in-job exceptions to ``failed``
    verdicts; this covers the layer below -- a pool worker killed hard
    (OOM, ``os._exit``, a broken process pool), where no outcome ever
    came back and the scheduler must synthesize the verdict.
    """
    return JobOutcome(
        job_id=job.job_id,
        verb=job.verb,
        circuit=job.circuit,
        seed=job.seed,
        status="failed",
        error=reason,
    )


__all__ = [
    "JobOutcome",
    "execute_job",
    "failed_outcome",
    "kway_report_from_solution",
    "skipped_outcome",
]
