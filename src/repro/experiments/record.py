"""Record the full experiment suite into ``results/`` (EXPERIMENTS.md data).

Runs every table/figure at recording fidelity and writes the rendered
tables to text files.  The k-way sweep (Tables IV-VII) uses per-circuit
scales: the published circuit sizes where runtime permits, reduced scale
for the largest ISCAS'89 circuits (documented in the output and in
EXPERIMENTS.md; the reproduction targets are relative quantities, stable
under scaling).

Usage::

    python -m repro.experiments.record [--out results] [--skip-table3]
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, Tuple

from repro.core.results import KWayReport
from repro.experiments import figure3, table1, table2, table3, tables4to7

#: Per-circuit scale for the k-way sweep (runtime-bounded on one core).
#: The pad-heavy c5315/c7552 and the big ISCAS'89 circuits run reduced;
#: every configuration remains a genuine multi-device problem.
KWAY_SCALES: Dict[str, float] = {
    "c3540": 1.0,
    "c5315": 0.6,
    "c6288": 1.0,
    "c7552": 0.6,
    "s5378": 0.7,
    "s9234": 0.4,
    "s13207": 0.35,
    "s15850": 0.3,
    "s38584": 0.25,
}


def _write(out_dir: str, name: str, text: str) -> None:
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"wrote {path}")


def record_kway_sweep(out_dir: str, seed: int = 1994) -> None:
    data: Dict[Tuple[str, float], KWayReport] = {}
    start = time.time()
    for circuit, scale in KWAY_SCALES.items():
        part = tables4to7.sweep(
            (circuit,),
            scale,
            seed=seed,
            n_solutions=1,
            seeds_per_carve=2,
            devices_per_carve=2,
        )
        data.update(part)
        print(f"  {circuit} (scale {scale}) done at {time.time() - start:.0f}s")
    scales_note = ", ".join(f"{c}@{s}" for c, s in KWAY_SCALES.items())
    for name, fn in (
        ("table4.txt", tables4to7.table4),
        ("table5.txt", tables4to7.table5),
        ("table6.txt", tables4to7.table6),
        ("table7.txt", tables4to7.table7),
        ("device_distribution.txt", tables4to7.device_distribution_table),
    ):
        result = fn(data, scale=0.0)
        result.title = result.title.replace("(scale=0.0)", "(per-circuit scales)")
        result.notes.append(f"per-circuit scales: {scales_note}")
        _write(out_dir, name, result.text())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results")
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument("--skip-table3", action="store_true")
    parser.add_argument("--table3-scale", type=float, default=1.0)
    parser.add_argument("--table3-runs", type=int, default=20)
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    _write(args.out, "table1.txt", table1.run().text())
    _write(args.out, "table2.txt", table2.run(scale=1.0, seed=args.seed).text())
    _write(args.out, "figure3.txt", figure3.run(scale=1.0, seed=args.seed).text())
    if not args.skip_table3:
        result = table3.run(
            scale=args.table3_scale, seed=args.seed, runs=args.table3_runs
        )
        _write(args.out, "table3.txt", result.text())
    record_kway_sweep(args.out, seed=args.seed)


if __name__ == "__main__":
    main()
