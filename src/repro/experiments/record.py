"""Record the full experiment suite into ``results/`` (EXPERIMENTS.md data).

Runs every table/figure at recording fidelity and writes the rendered
tables to text files.  The k-way sweep (Tables IV-VII) uses per-circuit
scales: the published circuit sizes where runtime permits, reduced scale
for the largest ISCAS'89 circuits (documented in the output and in
EXPERIMENTS.md; the reproduction targets are relative quantities, stable
under scaling).

Every regeneration is also logged to the run ledger
(:mod:`repro.obs.ledger`, default ``<out>/ledger``): one ``experiment``
record per (circuit, T) configuration of the k-way sweep plus one per
rendered table, so successive recordings can be diffed with
``repro-fpga runs diff``.  A paper-vs-measured drift report
(``paper_drift.txt``) compares the suite aggregates against the paper's
published anchors (Tables V-VII).

Usage::

    python -m repro.experiments.record [--out results] [--skip-table3]
                                       [--ledger PATH | --no-ledger]
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.core.results import KWayReport
from repro.experiments import figure3, table1, table2, table3, tables4to7
from repro.experiments.common import TableResult
from repro.obs import ledger as obs_ledger

INF = float("inf")

#: Per-circuit scale for the k-way sweep (runtime-bounded on one core).
#: The pad-heavy c5315/c7552 and the big ISCAS'89 circuits run reduced;
#: every configuration remains a genuine multi-device problem.
KWAY_SCALES: Dict[str, float] = {
    "c3540": 1.0,
    "c5315": 0.6,
    "c6288": 1.0,
    "c7552": 0.6,
    "s5378": 0.7,
    "s9234": 0.4,
    "s13207": 0.35,
    "s15850": 0.3,
    "s38584": 0.25,
}

#: The paper's published suite aggregates the drift report anchors on:
#: Table V reports average CLB utilization at 77% without replication,
#: rising to at most 83%; Table VII reports average IOB utilization
#: falling from 77% to 67%.
PAPER_ANCHORS: Dict[str, float] = {
    "clb_utilization_baseline": 0.77,
    "clb_utilization_best": 0.83,
    "iob_utilization_baseline": 0.77,
    "iob_utilization_best": 0.67,
}


def _write(out_dir: str, name: str, text: str) -> None:
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"wrote {path}")


def _log_table(
    ledger: Optional[obs_ledger.Ledger],
    name: str,
    result: TableResult,
    seed: int,
) -> None:
    """One ``experiment`` ledger record per rendered table."""
    if ledger is None:
        return
    ledger.append(
        obs_ledger.build_record(
            kind="experiment",
            circuit="suite",
            config={"verb": "experiment", "table": name},
            seed=seed,
            quality={"table": name, "rows": result.row_dict()},
        )
    )


def paper_drift_report(data: Dict[Tuple[str, float], KWayReport]) -> str:
    """Paper-vs-measured drift over the k-way sweep aggregates.

    Compares the suite means against :data:`PAPER_ANCHORS`: baseline
    (T = inf, no replication) and best-over-T CLB utilization (Table V),
    baseline and best-over-T IOB utilization (Table VII), and the
    fraction of circuits whose total device cost improves at >= 1
    threshold setting (Table VI's qualitative claim).
    """
    circuits = sorted({c for c, _ in data})
    finite_ts = sorted({t for _, t in data if t != INF})

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def suite_mean(metric: str, t: float) -> float:
        return mean(
            [getattr(data[(c, t)], metric) for c in circuits if (c, t) in data]
        )

    clb_base = suite_mean("avg_clb_utilization", INF)
    iob_base = suite_mean("avg_iob_utilization", INF)
    clb_best = max(
        (suite_mean("avg_clb_utilization", t) for t in finite_ts),
        default=clb_base,
    )
    iob_best = min(
        (suite_mean("avg_iob_utilization", t) for t in finite_ts),
        default=iob_base,
    )
    improved = [
        c
        for c in circuits
        if (c, INF) in data
        and any(
            (c, t) in data
            and data[(c, t)].total_cost < data[(c, INF)].total_cost
            for t in finite_ts
        )
    ]

    rows = [
        ("avg CLB utilization, baseline (T=inf)",
         PAPER_ANCHORS["clb_utilization_baseline"], clb_base),
        ("avg CLB utilization, best over T",
         PAPER_ANCHORS["clb_utilization_best"], clb_best),
        ("avg IOB utilization, baseline (T=inf)",
         PAPER_ANCHORS["iob_utilization_baseline"], iob_base),
        ("avg IOB utilization, best over T",
         PAPER_ANCHORS["iob_utilization_best"], iob_best),
    ]
    lines = [
        "Paper-vs-measured drift (k-way sweep aggregates)",
        "=" * 48,
        f"{'metric':<42} {'paper':>7} {'measured':>9} {'drift':>8}",
        "-" * 70,
    ]
    for label, paper, measured in rows:
        lines.append(
            f"{label:<42} {paper:>6.0%} {measured:>8.1%} "
            f"{measured - paper:>+7.1%}"
        )
    lines.append(
        f"circuits with device cost reduced at >= 1 T: "
        f"{len(improved)}/{len(circuits)} "
        f"(paper: nearly every circuit)"
    )
    lines.append(
        "note: measured at the recording scales, see table notes; the "
        "reproduction targets relative quantities."
    )
    return "\n".join(lines)


def sweep_manifest(seed: int = 1994) -> Dict:
    """The recording k-way sweep as a batch manifest.

    Same grid and fidelity as :func:`record_kway_sweep`'s in-process
    path (per-circuit :data:`KWAY_SCALES`, n_solutions=1, 2 seeds and 2
    devices per carve), so a pre-warmed cache makes recording a replay.
    """
    return tables4to7.sweep_manifest(
        circuits=list(KWAY_SCALES),
        seed=seed,
        n_solutions=1,
        seeds_per_carve=2,
        devices_per_carve=2,
        scales=KWAY_SCALES,
        name="record-kway-sweep",
    )


def _log_sweep_part(
    ledger: Optional[obs_ledger.Ledger],
    part: Dict[Tuple[str, float], KWayReport],
    seed: int,
) -> None:
    if ledger is None:
        return
    for (name, threshold), report in sorted(part.items()):
        ledger.append(
            obs_ledger.build_record(
                kind="experiment",
                circuit=name,
                config={
                    "verb": "experiment",
                    "suite": "tables4to7",
                    "threshold": threshold,
                    "scale": KWAY_SCALES[name],
                    "n_solutions": 1,
                    "seeds_per_carve": 2,
                    "devices_per_carve": 2,
                },
                seed=seed,
                quality=obs_ledger.quality_from_kway_report(report),
                elapsed_seconds=report.elapsed_seconds,
            )
        )


def record_kway_sweep(
    out_dir: str,
    seed: int = 1994,
    ledger: Optional[obs_ledger.Ledger] = None,
    batch_jobs: Optional[int] = None,
    cache: str = "off",
    cache_dir: Optional[str] = None,
) -> Dict[Tuple[str, float], KWayReport]:
    data: Dict[Tuple[str, float], KWayReport] = {}
    start = time.time()
    if batch_jobs is not None:
        # Batch path: the whole sweep as one manifest through the
        # scheduler -- deduped against the solution cache, fanned out
        # over `batch_jobs` workers.  Ledger records and tables are
        # identical to the sequential path.
        data, batch = tables4to7.sweep_via_batch(
            circuits=list(KWAY_SCALES),
            seed=seed,
            n_solutions=1,
            seeds_per_carve=2,
            devices_per_carve=2,
            scales=KWAY_SCALES,
            jobs=batch_jobs,
            cache=cache,
            cache_dir=cache_dir,
        )
        _log_sweep_part(ledger, data, seed)
        print(f"  batch sweep: {batch.summary()}")
    else:
        for circuit, scale in KWAY_SCALES.items():
            part = tables4to7.sweep(
                (circuit,),
                scale,
                seed=seed,
                n_solutions=1,
                seeds_per_carve=2,
                devices_per_carve=2,
            )
            data.update(part)
            _log_sweep_part(ledger, part, seed)
            print(
                f"  {circuit} (scale {scale}) done at {time.time() - start:.0f}s"
            )
    scales_note = ", ".join(f"{c}@{s}" for c, s in KWAY_SCALES.items())
    for name, fn in (
        ("table4.txt", tables4to7.table4),
        ("table5.txt", tables4to7.table5),
        ("table6.txt", tables4to7.table6),
        ("table7.txt", tables4to7.table7),
        ("device_distribution.txt", tables4to7.device_distribution_table),
    ):
        result = fn(data, scale=0.0)
        result.title = result.title.replace("(scale=0.0)", "(per-circuit scales)")
        result.notes.append(f"per-circuit scales: {scales_note}")
        _write(out_dir, name, result.text())
        _log_table(ledger, name.replace(".txt", ""), result, seed)
    _write(out_dir, "paper_drift.txt", paper_drift_report(data))
    return data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results")
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument("--skip-table3", action="store_true")
    parser.add_argument("--table3-scale", type=float, default=1.0)
    parser.add_argument("--table3-runs", type=int, default=20)
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="run-ledger destination (default <out>/ledger)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="skip ledger logging entirely",
    )
    parser.add_argument(
        "--batch-jobs",
        type=int,
        default=None,
        metavar="N",
        help="run the k-way sweep through the batch scheduler with N "
        "workers (default: sequential in-process sweep)",
    )
    parser.add_argument(
        "--cache",
        choices=("use", "refresh", "off"),
        default="off",
        help="solution-cache policy for the batch sweep (default off)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="solution-cache directory (default results/cache)",
    )
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)
    ledger: Optional[obs_ledger.Ledger] = None
    if not args.no_ledger:
        ledger = obs_ledger.Ledger(
            args.ledger or os.path.join(args.out, "ledger")
        )
        print(f"logging runs to {ledger.path}")

    result = table1.run()
    _write(args.out, "table1.txt", result.text())
    _log_table(ledger, "table1", result, args.seed)
    result = table2.run(scale=1.0, seed=args.seed)
    _write(args.out, "table2.txt", result.text())
    _log_table(ledger, "table2", result, args.seed)
    _write(args.out, "figure3.txt", figure3.run(scale=1.0, seed=args.seed).text())
    if not args.skip_table3:
        result = table3.run(
            scale=args.table3_scale, seed=args.seed, runs=args.table3_runs
        )
        _write(args.out, "table3.txt", result.text())
        _log_table(ledger, "table3", result, args.seed)
    record_kway_sweep(
        args.out,
        seed=args.seed,
        ledger=ledger,
        batch_jobs=args.batch_jobs,
        cache=args.cache,
        cache_dir=args.cache_dir,
    )


if __name__ == "__main__":
    main()
