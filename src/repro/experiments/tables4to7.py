"""Tables IV-VII: the k-way heterogeneous partitioning T-sweep.

One sweep (each circuit partitioned at T = infinity, 0, 1, 2, 3) feeds four
paper tables:

* **Table IV** -- percentage of replicated cells per T, plus CPU seconds;
* **Table V**  -- average CLB utilization per T vs. the no-replication
  baseline (paper: 77% baseline rising to at most 83%);
* **Table VI** -- total device cost per T vs. baseline (cost reduced for
  nearly every circuit at >= 1 setting of T);
* **Table VII** -- average IOB utilization per T vs. baseline (the
  interconnect measure of eq. 2; paper: 77% down to 67% on average).

The sweep is memoized in-process so the four tables (and their benches)
share one computation.  For cached/resumable sweeps, the same grid can
be expressed as a batch manifest (:func:`sweep_manifest`) and driven
through :func:`repro.batch.scheduler.run_batch`; :func:`sweep_via_batch`
bundles both and :func:`reports_from_batch` turns a finished batch back
into the ``{(circuit, T): KWayReport}`` dict the table builders take.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.flow import kway_experiment
from repro.core.results import KWayReport
from repro.experiments.common import TableResult, load_suite, standard_parser

INF = float("inf")
#: The paper's threshold settings: the baseline plus T = 0..3 (its Table IV
#: note: "T = 0 includes multi-output cells with psi = 0").
DEFAULT_THRESHOLDS: Tuple[float, ...] = (INF, 0, 1, 2, 3)


@lru_cache(maxsize=16)
def _sweep_cached(
    circuits: Tuple[str, ...],
    scale: float,
    seed: int,
    thresholds: Tuple[float, ...],
    n_solutions: int,
    seeds_per_carve: int,
    devices_per_carve: int,
) -> Dict[Tuple[str, float], KWayReport]:
    out: Dict[Tuple[str, float], KWayReport] = {}
    for sc in load_suite(circuits, scale, seed):
        for t in thresholds:
            out[(sc.name, t)] = kway_experiment(
                sc.mapped,
                threshold=t,
                n_solutions=n_solutions,
                seed=seed,
                seeds_per_carve=seeds_per_carve,
                devices_per_carve=devices_per_carve,
            )
    return out


def sweep(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    n_solutions: int = 2,
    seeds_per_carve: int = 3,
    devices_per_carve: int = 3,
) -> Dict[Tuple[str, float], KWayReport]:
    """Run (or fetch the memoized) k-way sweep."""
    from repro.netlist.benchmarks import BENCHMARK_NAMES

    names = tuple(circuits) if circuits else BENCHMARK_NAMES
    return _sweep_cached(
        names,
        scale,
        seed,
        tuple(thresholds),
        n_solutions,
        seeds_per_carve,
        devices_per_carve,
    )


def sweep_manifest(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    n_solutions: int = 2,
    seeds_per_carve: int = 3,
    devices_per_carve: int = 3,
    scales: Optional[Dict[str, float]] = None,
    name: str = "tables4to7",
) -> Dict[str, Any]:
    """The T-sweep as a ``repro-batch-manifest/1`` document.

    One partition job per (circuit, threshold); ``scales`` overrides the
    global ``scale`` per circuit (the recording scales of
    :mod:`repro.experiments.record`).  ``T = inf`` is spelled ``"inf"``
    (strict JSON).  Feed the result to
    :func:`repro.batch.scheduler.run_batch` and rebuild the table input
    with :func:`reports_from_batch`.
    """
    from repro.batch.manifest import MANIFEST_SCHEMA_NAME
    from repro.netlist.benchmarks import BENCHMARK_NAMES

    names = tuple(circuits) if circuits else BENCHMARK_NAMES
    jobs: List[Dict[str, Any]] = []
    for circuit in names:
        for t in thresholds:
            jobs.append(
                {
                    "circuit": circuit,
                    "scale": (scales or {}).get(circuit, scale),
                    "threshold": "inf" if t == INF else t,
                }
            )
    return {
        "schema": MANIFEST_SCHEMA_NAME,
        "name": name,
        "defaults": {
            "verb": "partition",
            "seed": seed,
            "n_solutions": n_solutions,
            "seeds_per_carve": seeds_per_carve,
            "devices_per_carve": devices_per_carve,
        },
        "jobs": jobs,
    }


def reports_from_batch(report: Any) -> Dict[Tuple[str, float], KWayReport]:
    """``{(circuit, T): KWayReport}`` from a finished sweep batch.

    Jobs without a report (failed/skipped) are left out -- the table
    builders fail loudly on the missing key rather than render a hole.
    """
    data: Dict[Tuple[str, float], KWayReport] = {}
    for outcome in report.outcomes:
        if outcome.verb == "partition" and outcome.report is not None:
            data[(outcome.circuit, outcome.report.threshold)] = outcome.report
    return data


def sweep_via_batch(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    n_solutions: int = 2,
    seeds_per_carve: int = 3,
    devices_per_carve: int = 3,
    scales: Optional[Dict[str, float]] = None,
    jobs: int = 1,
    cache: str = "use",
    cache_dir: Optional[str] = None,
) -> Tuple[Dict[Tuple[str, float], KWayReport], Any]:
    """Run the T-sweep through the batch scheduler with caching.

    Returns ``(table data, BatchReport)``.  Repeated invocations with an
    intact cache complete as pure cache hits with bit-identical reports
    (including the CPU-seconds columns, which replay the original solve
    times).
    """
    from repro.batch.scheduler import run_batch

    manifest = sweep_manifest(
        circuits,
        scale,
        seed,
        thresholds,
        n_solutions,
        seeds_per_carve,
        devices_per_carve,
        scales=scales,
    )
    batch = run_batch(manifest, jobs=jobs, cache=cache, cache_dir=cache_dir)
    bad = [o.job_id for o in batch.outcomes if o.report is None]
    if bad:
        raise RuntimeError(f"sweep batch left jobs without results: {bad}")
    return reports_from_batch(batch), batch


def _circuit_names(data: Dict[Tuple[str, float], KWayReport]) -> List[str]:
    seen: Dict[str, None] = {}
    for name, _ in data:
        seen.setdefault(name, None)
    return list(seen)


def _threshold_label(t: float) -> str:
    return "inf" if t == INF else str(int(t))


def table4(data: Dict[Tuple[str, float], KWayReport], scale: float) -> TableResult:
    """Table IV: % replicated cells per T and CPU seconds."""
    thresholds = [t for t in DEFAULT_THRESHOLDS if t != INF]
    headers = ["Circuit"] + [f"T={_threshold_label(t)} %" for t in thresholds] + [
        "CPU s (T=1)",
        "CPU s (no repl)",
    ]
    rows: List[List[object]] = []
    sums = [0.0] * len(thresholds)
    names = _circuit_names(data)
    for name in names:
        row: List[object] = [name]
        for i, t in enumerate(thresholds):
            pct = 100.0 * data[(name, t)].replicated_fraction
            sums[i] += pct
            row.append(pct)
        row.append(round(data[(name, 1)].elapsed_seconds, 2))
        row.append(round(data[(name, INF)].elapsed_seconds, 2))
        rows.append(row)
    rows.append(["Avg"] + [s / len(names) for s in sums] + ["", ""])
    return TableResult(
        title=f"Table IV: percentage of replicated cells and CPU cost (scale={scale})",
        headers=headers,
        rows=rows,
        notes=["T=0 includes multi-output cells with psi=0 (paper's note)"],
    )


def table5(data: Dict[Tuple[str, float], KWayReport], scale: float) -> TableResult:
    """Table V: average CLB utilization per T vs the no-replication baseline."""
    thresholds = [1.0, 2.0, 3.0]
    headers = ["Circuit", "Util in [3] %"] + [
        col for t in thresholds for col in (f"T={int(t)} %", f"T={int(t)} incr")
    ]
    rows: List[List[object]] = []
    base_sum = 0.0
    t_sums = [0.0] * len(thresholds)
    names = _circuit_names(data)
    for name in names:
        base = 100.0 * data[(name, INF)].avg_clb_utilization
        base_sum += base
        row: List[object] = [name, base]
        for i, t in enumerate(thresholds):
            util = 100.0 * data[(name, t)].avg_clb_utilization
            t_sums[i] += util
            row.extend([util, util - base])
        rows.append(row)
    avg_row: List[object] = ["Avg", base_sum / len(names)]
    for i in range(len(thresholds)):
        avg = t_sums[i] / len(names)
        avg_row.extend([avg, avg - base_sum / len(names)])
    rows.append(avg_row)
    return TableResult(
        title=f"Table V: average CLB utilization after partitioning (scale={scale})",
        headers=headers,
        rows=rows,
    )


def table6(data: Dict[Tuple[str, float], KWayReport], scale: float) -> TableResult:
    """Table VI: total design cost per T vs the no-replication baseline."""
    thresholds = [1.0, 2.0, 3.0]
    headers = ["Circuit", "Cost in [3]"] + [
        col for t in thresholds for col in (f"T={int(t)}", f"T={int(t)} red %")
    ]
    rows: List[List[object]] = []
    names = _circuit_names(data)
    red_sums = [0.0] * len(thresholds)
    for name in names:
        base = data[(name, INF)].total_cost
        row: List[object] = [name, base]
        for i, t in enumerate(thresholds):
            cost = data[(name, t)].total_cost
            red = 100.0 * (base - cost) / base if base else 0.0
            red_sums[i] += red
            row.extend([cost, red])
        rows.append(row)
    avg_row: List[object] = ["Avg", ""]
    for i in range(len(thresholds)):
        avg_row.extend(["", red_sums[i] / len(names)])
    rows.append(avg_row)
    return TableResult(
        title=f"Table VI: total design cost after partitioning (scale={scale})",
        headers=headers,
        rows=rows,
    )


def table7(data: Dict[Tuple[str, float], KWayReport], scale: float) -> TableResult:
    """Table VII: average IOB utilization per T vs the baseline (eq. 2)."""
    thresholds = [1.0, 2.0, 3.0]
    headers = ["Circuit", "Util in [3] %"] + [
        col for t in thresholds for col in (f"T={int(t)} %", f"T={int(t)} red %")
    ]
    rows: List[List[object]] = []
    names = _circuit_names(data)
    base_sum = 0.0
    t_sums = [0.0] * len(thresholds)
    for name in names:
        base = 100.0 * data[(name, INF)].avg_iob_utilization
        base_sum += base
        row: List[object] = [name, base]
        for i, t in enumerate(thresholds):
            util = 100.0 * data[(name, t)].avg_iob_utilization
            t_sums[i] += util
            red = 100.0 * (base - util) / base if base else 0.0
            row.extend([util, red])
        rows.append(row)
    avg_row: List[object] = ["Avg", base_sum / len(names)]
    for i in range(len(thresholds)):
        avg = t_sums[i] / len(names)
        red = 100.0 * (base_sum / len(names) - avg) / (base_sum / len(names))
        avg_row.extend([avg, red])
    rows.append(avg_row)
    return TableResult(
        title=f"Table VII: average IOB utilization after partitioning (scale={scale})",
        headers=headers,
        rows=rows,
    )


def device_distribution_table(
    data: Dict[Tuple[str, float], KWayReport], scale: float
) -> TableResult:
    """Device mix per circuit: baseline vs T = 1.

    The paper remarks that "partitioning with replication utilizes
    different FPGA devices, so while the total costs are comparable with
    [3], the device distributions are quite different"; this auxiliary
    table makes that visible.
    """
    rows: List[List[object]] = []
    for name in _circuit_names(data):
        base = data[(name, INF)]
        repl = data[(name, 1.0)]
        rows.append(
            [
                name,
                base.k,
                _fmt_devices(base.device_counts),
                repl.k,
                _fmt_devices(repl.device_counts),
            ]
        )
    return TableResult(
        title=f"Device distributions: baseline vs T=1 (scale={scale})",
        headers=["Circuit", "k [3]", "devices [3]", "k T=1", "devices T=1"],
        rows=rows,
    )


def _fmt_devices(counts: Dict[str, int]) -> str:
    return " ".join(f"{n}x{d[-4:]}" for d, n in sorted(counts.items()))


def run_all(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
    n_solutions: int = 2,
    seeds_per_carve: int = 3,
) -> List[TableResult]:
    data = sweep(
        circuits,
        scale,
        seed,
        n_solutions=n_solutions,
        seeds_per_carve=seeds_per_carve,
    )
    return [
        table4(data, scale),
        table5(data, scale),
        table6(data, scale),
        table7(data, scale),
    ]


def main() -> None:
    parser = standard_parser(__doc__ or "tables4to7")
    parser.add_argument("--solutions", type=int, default=2)
    parser.add_argument("--seeds-per-carve", type=int, default=3)
    args = parser.parse_args()
    for table in run_all(
        args.circuits, args.scale, args.seed, args.solutions, args.seeds_per_carve
    ):
        print(table.text())
        print()


if __name__ == "__main__":
    main()
