"""Table III: best/average cut-set gains from functional replication.

The paper's first experiment: bipartition every benchmark into two
equal-sized partitions, terminal constraints completely relaxed, 20 runs
per circuit, threshold T = 0 (maximum replication).  Reported per circuit:
best and average cut of plain F-M min-cut, best and average cut of F-M
min-cut + functional replication, and the percentage reductions.  The
paper's aggregate numbers: 34.6% average best-cut reduction, 32.7% average
average-cut reduction, +34% CPU.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.flow import bipartition_experiment
from repro.core.results import BipartitionReport
from repro.experiments.common import (
    TableResult,
    geomean_percent,
    load_suite,
    standard_parser,
)


def reports(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
    runs: int = 20,
    threshold: int = 0,
) -> Dict[str, Dict[str, BipartitionReport]]:
    """Per-circuit reports for both algorithms."""
    out: Dict[str, Dict[str, BipartitionReport]] = {}
    for sc in load_suite(circuits, scale, seed):
        out[sc.name] = {
            "fm": bipartition_experiment(sc.mapped, "fm", runs=runs, seed=seed),
            "fr": bipartition_experiment(
                sc.mapped, "fm+functional", runs=runs, threshold=threshold, seed=seed
            ),
        }
    return out


def run(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
    runs: int = 20,
    threshold: int = 0,
) -> TableResult:
    data = reports(circuits, scale, seed, runs, threshold)
    rows: List[List[object]] = []
    best_reds: List[float] = []
    avg_reds: List[float] = []
    cpu_ratios: List[float] = []
    for name, pair in data.items():
        fm, fr = pair["fm"], pair["fr"]
        best_red = 100.0 * (fm.best_cut - fr.best_cut) / fm.best_cut if fm.best_cut else 0.0
        avg_red = 100.0 * (fm.avg_cut - fr.avg_cut) / fm.avg_cut if fm.avg_cut else 0.0
        best_reds.append(best_red)
        avg_reds.append(avg_red)
        if fm.elapsed_seconds > 0:
            cpu_ratios.append(fr.elapsed_seconds / fm.elapsed_seconds)
        rows.append(
            [
                name,
                fm.best_cut,
                round(fm.avg_cut, 1),
                fr.best_cut,
                round(fr.avg_cut, 1),
                best_red,
                avg_red,
            ]
        )
    rows.append(
        [
            "Avg",
            "",
            "",
            "",
            "",
            geomean_percent(best_reds),
            geomean_percent(avg_reds),
        ]
    )
    notes = [
        f"{runs} runs per circuit, equal-size partitions, relaxed terminals, T={threshold}",
    ]
    if cpu_ratios:
        notes.append(
            f"replication CPU overhead: x{sum(cpu_ratios) / len(cpu_ratios):.2f} "
            "(paper: +34% on a SparcStation; ours recomputes gains in Python)"
        )
    return TableResult(
        title=f"Table III: cut-set gains from functional replication (scale={scale})",
        headers=[
            "Circuit",
            "FM best",
            "FM avg",
            "FR best",
            "FR avg",
            "Best red %",
            "Avg red %",
        ],
        rows=rows,
        notes=notes,
    )


def main() -> None:
    parser = standard_parser(__doc__ or "table3")
    parser.add_argument("--runs", type=int, default=20)
    parser.add_argument("--threshold", type=int, default=0)
    args = parser.parse_args()
    print(run(args.circuits, args.scale, args.seed, args.runs, args.threshold).text())


if __name__ == "__main__":
    main()
