"""Table II: benchmark circuit characteristics after XC3000 mapping.

Columns exactly as in the paper: #CLBs, #IOBs, #DFF, #NETs, #PINs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import TableResult, load_suite, standard_parser
from repro.netlist.stats import mapped_stats


def run(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
) -> TableResult:
    rows = []
    for sc in load_suite(circuits, scale, seed):
        stats = mapped_stats(sc.mapped)
        rows.append(
            [
                stats.name,
                stats.n_clbs,
                stats.n_iobs,
                stats.n_dff,
                stats.n_nets,
                stats.n_pins,
            ]
        )
    return TableResult(
        title=f"Table II: benchmark characteristics after mapping (scale={scale})",
        headers=["Circuit", "#CLBs", "#IOBs", "#DFF", "#NETs", "#PINs"],
        rows=rows,
        notes=["circuits are synthetic equivalents built to the published ISCAS profiles"],
    )


def main() -> None:
    args = standard_parser(__doc__ or "table2").parse_args()
    print(run(args.circuits, args.scale, args.seed).text())


if __name__ == "__main__":
    main()
