"""Shared experiment plumbing: suite loading, table formatting, caching.

The paper's evaluation runs over nine benchmark circuits; experiments here
take a ``scale`` knob (1.0 = the published circuit sizes) and a ``circuits``
subset so benches can run quickly by default and at full fidelity on demand.
Suite loading and the k-way sweep are memoized in-process because four of
the paper's tables are different projections of one sweep.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hypergraph.build import build_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.netlist.benchmarks import BENCHMARK_NAMES, benchmark_circuit
from repro.techmap.mapped import MappedNetlist, technology_map

#: Circuit subset used by quick (default) bench runs.
QUICK_CIRCUITS: Tuple[str, ...] = ("c3540", "c6288", "s5378", "s9234")
#: Default scale for quick bench runs.
QUICK_SCALE = 0.3


@dataclass
class TableResult:
    """A rendered experiment table."""

    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)

    def text(self) -> str:
        """Render as an aligned ASCII table."""
        cells = [self.headers] + [
            [_fmt(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[col]) for row in cells) for col in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in cells[1:]:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def row_dict(self) -> List[Dict[str, object]]:
        return [dict(zip(self.headers, row)) for row in self.rows]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class SuiteCircuit:
    """One loaded benchmark circuit in all representations."""

    name: str
    mapped: MappedNetlist
    hg_full: Hypergraph  # with terminal nodes
    hg_relaxed: Hypergraph  # terminals relaxed (experiment 1 setting)


@lru_cache(maxsize=8)
def _load_suite_cached(
    circuits: Tuple[str, ...], scale: float, seed: int
) -> Tuple[SuiteCircuit, ...]:
    loaded = []
    for name in circuits:
        netlist = benchmark_circuit(name, scale=scale, seed=seed)
        mapped = technology_map(netlist)
        loaded.append(
            SuiteCircuit(
                name=name,
                mapped=mapped,
                hg_full=build_hypergraph(mapped, include_terminals=True),
                hg_relaxed=build_hypergraph(mapped, include_terminals=False),
            )
        )
    return tuple(loaded)


def load_suite(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
) -> List[SuiteCircuit]:
    """Load (and memoize) a benchmark suite at the given scale."""
    names = tuple(circuits) if circuits else BENCHMARK_NAMES
    return list(_load_suite_cached(names, scale, seed))


def standard_parser(description: str) -> argparse.ArgumentParser:
    """Common CLI flags shared by every experiment module."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="benchmark size factor (1.0 = published circuit sizes)",
    )
    parser.add_argument(
        "--circuits",
        nargs="*",
        default=None,
        metavar="NAME",
        help=f"circuit subset (default: all of {', '.join(BENCHMARK_NAMES)})",
    )
    parser.add_argument("--seed", type=int, default=1994, help="generator seed")
    return parser


def geomean_percent(values: Iterable[float]) -> float:
    """Arithmetic mean of percentages (the paper averages this way)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0
