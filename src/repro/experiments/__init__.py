"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...) -> TableResult`` and a CLI entry point::

    python -m repro.experiments.table3 --scale 0.4 --runs 20

Modules: ``table1`` (device library), ``table2`` (benchmark
characteristics), ``figure3`` (replication-potential distributions),
``table3`` (min-cut with/without functional replication), ``tables4to7``
(the k-way T-sweep feeding Tables IV, V, VI and VII plus the auxiliary
device-distribution table), and ``record`` (the driver that regenerates
the full ``results/`` record behind EXPERIMENTS.md).
"""

from repro.experiments.common import TableResult, load_suite, SuiteCircuit

__all__ = ["TableResult", "load_suite", "SuiteCircuit"]
