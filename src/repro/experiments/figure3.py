"""Figure 3: distribution of cells vs. replication potential.

The paper's figure stacks, per circuit, the fraction of cells with
psi = 0 (single-output), psi = 0* (multi-output with zero potential) and
psi = 1, 2, 3, ...  The observed shape to reproduce: slightly under half of
all cells are single-output on average, about 10% are multi-output with
psi = 0, and the rest have psi >= 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.common import TableResult, load_suite, standard_parser
from repro.replication.potential import PotentialDistribution, cell_distribution


def distributions(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
) -> List[PotentialDistribution]:
    return [
        cell_distribution(sc.hg_full, name=sc.name)
        for sc in load_suite(circuits, scale, seed)
    ]


def run(
    circuits: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1994,
    max_psi: int = 5,
) -> TableResult:
    dists = distributions(circuits, scale, seed)
    headers = ["Circuit", "cells", "psi=0 (1-out) %", "psi=0* %"] + [
        f"psi={p} %" for p in range(1, max_psi)
    ] + [f"psi>={max_psi} %"]
    rows = []
    for dist in dists:
        row: List[object] = [
            dist.name,
            dist.n_cells,
            100.0 * dist.fraction(dist.single_output_zero),
            100.0 * dist.fraction(dist.multi_output_zero),
        ]
        for p in range(1, max_psi):
            row.append(100.0 * dist.fraction(dist.by_potential.get(p, 0)))
        tail = sum(c for p, c in dist.by_potential.items() if p >= max_psi)
        row.append(100.0 * dist.fraction(tail))
        rows.append(row)
    return TableResult(
        title=f"Figure 3: cell distribution vs replication potential (scale={scale})",
        headers=headers,
        rows=rows,
    )


def ascii_histogram(dist: PotentialDistribution, width: int = 50) -> str:
    """One circuit's distribution as an ASCII bar chart (Figure 3 style)."""
    lines = [f"{dist.name} ({dist.n_cells} cells)"]
    for label, count, frac in dist.rows():
        bar = "#" * int(round(frac * width))
        lines.append(f"  {label:>16} {100 * frac:5.1f}% {bar}")
    return "\n".join(lines)


def main() -> None:
    parser = standard_parser(__doc__ or "figure3")
    parser.add_argument("--bars", action="store_true", help="print ASCII bars")
    args = parser.parse_args()
    print(run(args.circuits, args.scale, args.seed).text())
    if args.bars:
        for dist in distributions(args.circuits, args.scale, args.seed):
            print()
            print(ascii_histogram(dist))


if __name__ == "__main__":
    main()
