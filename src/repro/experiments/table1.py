"""Table I: the heterogeneous XC3000 device library.

A data table in the paper; regenerated here from the library object so the
reproduction's cost model is inspectable in the same shape, including the
economically essential property that unit cost per CLB decreases with
device size.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import TableResult
from repro.partition.devices import DeviceLibrary, XC3000_LIBRARY


def run(library: Optional[DeviceLibrary] = None) -> TableResult:
    library = library or XC3000_LIBRARY
    rows = []
    for dev in library:
        rows.append(
            [
                dev.name,
                dev.clbs,
                dev.terminals,
                dev.price,
                dev.util_lower,
                dev.util_upper,
                round(dev.cost_per_clb, 3),
            ]
        )
    return TableResult(
        title="Table I: device library (c_i, t_i, d_i, l_i, u_i)",
        headers=["Device", "CLB", "IOB", "price", "l", "u", "price/CLB"],
        rows=rows,
        notes=[
            "prices reconstructed: strictly decreasing cost per CLB "
            "(paper scan unreadable); capacities from the XC3000 data book"
        ],
    )


def main() -> None:
    print(run().text())


if __name__ == "__main__":
    main()
