#!/usr/bin/env python3
"""Quickstart: map a benchmark circuit and bipartition it with and without
functional replication (the paper's first experiment, at small scale).

Run:  python examples/quickstart.py
"""

from repro import (
    ReplicationConfig,
    FMConfig,
    benchmark_circuit,
    build_hypergraph,
    fm_bipartition,
    replication_bipartition,
    technology_map,
)


def main() -> None:
    # 1. A benchmark circuit (synthetic equivalent of ISCAS'89 s5378).
    netlist = benchmark_circuit("s5378", scale=0.3, seed=1)
    print(f"circuit : {netlist.name} -- {len(netlist)} gates, "
          f"{len(netlist.inputs)} PIs, {len(netlist.outputs)} POs, "
          f"{len(netlist.dffs)} DFFs")

    # 2. Technology-map into Xilinx XC3000 CLBs (<= 5 inputs, <= 2 outputs).
    mapped = technology_map(netlist)
    print(f"mapped  : {mapped.n_cells} CLBs, {mapped.n_iobs} IOBs, "
          f"{mapped.n_nets} nets "
          f"({mapped.n_multi_output_cells} two-output cells)")

    # 3. Build the partitioning hypergraph H = ({X;Y}, E); the equal-size
    #    cut experiment relaxes terminal constraints, so leave the pads out.
    hg = build_hypergraph(mapped, include_terminals=False)

    # 4. Plain Fiduccia-Mattheyses min-cut (the baseline).
    fm = fm_bipartition(hg, FMConfig(seed=42))
    print(f"\nF-M min-cut                    : cut = {fm.cut_size}")

    # 5. F-M with functional replication (the paper's contribution), with
    #    threshold T = 0 (every multi-output cell may replicate).
    fr = replication_bipartition(hg, ReplicationConfig(seed=42, threshold=0))
    reduction = 100.0 * (fm.cut_size - fr.cut_size) / fm.cut_size
    print(f"F-M min-cut + functional repl. : cut = {fr.cut_size} "
          f"({reduction:+.1f}% vs F-M), {fr.n_replicated} cells replicated "
          f"({100 * fr.replicated_fraction:.1f}%)")


if __name__ == "__main__":
    main()
