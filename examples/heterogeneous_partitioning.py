#!/usr/bin/env python3
"""Heterogeneous multi-FPGA partitioning: minimize device cost + interconnect.

The paper's second experiment: partition a large circuit into devices from
the XC3000 library (Table I) minimizing total price (eq. 1) and average IOB
utilization (eq. 2), comparing the no-replication baseline ([3]) against
partitioning with functional replication at threshold T = 1.

Run:  python examples/heterogeneous_partitioning.py [circuit] [scale]
"""

import sys

from repro import XC3000_LIBRARY, benchmark_circuit, technology_map
from repro.core.flow import kway_solution


def describe(tag, solution):
    cost = solution.cost
    print(f"\n{tag}")
    print(f"  devices ({solution.k}): {cost.device_counts}   "
          f"total cost = {cost.total_cost:.0f}")
    print(f"  avg CLB utilization = {100 * cost.avg_clb_utilization:.1f}%   "
          f"avg IOB utilization = {100 * cost.avg_iob_utilization:.1f}%")
    print(f"  replicated cells = {len(solution.replicated_cells)} "
          f"({100 * solution.replicated_fraction:.1f}%)   "
          f"feasible = {solution.feasible}")
    for block in solution.blocks:
        print(f"    P{block.index}: {block.device.name:8s} "
              f"{block.n_clbs:4d}/{block.device.max_clbs} CLBs  "
              f"{block.terminals:3d}/{block.device.terminals} IOBs  "
              f"{len(block.pads)} pads")


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s5378"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    netlist = benchmark_circuit(circuit, scale=scale, seed=1)
    mapped = technology_map(netlist)
    print(f"{circuit} at scale {scale}: {mapped.n_cells} CLBs, "
          f"{mapped.n_iobs} IOBs after XC3000 mapping")
    print(f"library: {[d.name for d in XC3000_LIBRARY]}")

    baseline = kway_solution(mapped, threshold=float("inf"), seed=7, n_solutions=2)
    describe("no replication (the DAC'93 baseline [3])", baseline)

    with_repl = kway_solution(mapped, threshold=1, seed=7, n_solutions=2)
    describe("functional replication, T = 1 (this paper)", with_repl)

    d_cost = with_repl.cost.total_cost - baseline.cost.total_cost
    d_iob = 100 * (
        with_repl.cost.avg_iob_utilization - baseline.cost.avg_iob_utilization
    )
    print(f"\nreplication effect: cost {d_cost:+.0f}, "
          f"avg IOB utilization {d_iob:+.1f} points")


if __name__ == "__main__":
    main()
