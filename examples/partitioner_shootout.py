#!/usr/bin/env python3
"""Partitioner shootout: FM vs spectral vs annealing vs multilevel vs
FM + functional replication, on one circuit.

Situates the DAC'94 engine among the era's alternatives (the paper's
related-work section) and shows the combined multilevel + replication flow
the paper's conclusion anticipates.

Run:  python examples/partitioner_shootout.py [circuit] [scale]
"""

import sys
import time

from repro import benchmark_circuit, build_hypergraph, technology_map
from repro.partition.annealing import AnnealingConfig, annealing_bipartition
from repro.partition.clustering import MultilevelConfig, multilevel_bipartition
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.fm_replication import ReplicationConfig, replication_bipartition
from repro.partition.spectral import SpectralConfig, spectral_bipartition


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s9234"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    netlist = benchmark_circuit(circuit, scale=scale, seed=1)
    mapped = technology_map(netlist)
    hg = build_hypergraph(mapped, include_terminals=False)
    print(f"{circuit} @ scale {scale}: {hg.n_cells} CLB cells, "
          f"{len(hg.nets)} nets\n")
    print(f"{'algorithm':<28} {'cut':>6} {'seconds':>8}  notes")

    def show(label, fn, note=""):
        start = time.perf_counter()
        cut = fn()
        elapsed = time.perf_counter() - start
        print(f"{label:<28} {cut:>6} {elapsed:>8.2f}  {note}")

    show("FM min-cut [15]", lambda: fm_bipartition(hg, FMConfig(seed=1)).cut_size)
    if hg.n_cells <= 3000:
        show(
            "spectral + FM [8]",
            lambda: spectral_bipartition(hg, SpectralConfig(seed=1)).cut_size,
        )
    show(
        "simulated annealing",
        lambda: annealing_bipartition(hg, AnnealingConfig(seed=1)).cut_size,
    )
    show(
        "multilevel FM [17]",
        lambda: multilevel_bipartition(hg, MultilevelConfig(seed=1)).cut_size,
    )
    show(
        "FM + functional repl (DAC'94)",
        lambda: replication_bipartition(
            hg, ReplicationConfig(seed=1, threshold=0)
        ).cut_size,
    )
    show(
        "multilevel + functional repl",
        lambda: multilevel_bipartition(
            hg, MultilevelConfig(seed=1, replication_refine=True)
        ).final_cut,
        note="the paper's suggested combination",
    )


if __name__ == "__main__":
    main()
