#!/usr/bin/env python3
"""Partitioning onto a *custom* heterogeneous device library.

The paper's formulation (eq. 1) is library-agnostic: any set of devices
D_i = (c_i, t_i, d_i, l_i, u_i) works.  This example defines a three-member
"budget" library with a very different price curve, loads a circuit from
.bench text (the normal entry path for user circuits), and partitions it.

Run:  python examples/custom_device_library.py
"""

from repro import loads_bench, technology_map
from repro.core.flow import kway_solution
from repro.netlist.generate import array_multiplier
from repro.netlist.bench_io import dumps_bench
from repro.partition.devices import Device, DeviceLibrary

BUDGET_LIBRARY = DeviceLibrary(
    [
        # name           CLBs  IOBs  price  l     u
        Device("ECO-25", 25, 30, 12.0, util_lower=0.0, util_upper=0.92),
        Device("ECO-60", 60, 46, 24.0, util_lower=0.0, util_upper=0.92),
        Device("ECO-120", 120, 68, 40.0, util_lower=0.0, util_upper=0.92),
    ],
    name="budget",
)


def main() -> None:
    # A user circuit arriving as .bench text: an 8x8 array multiplier.
    bench_text = dumps_bench(array_multiplier("mult8x8", 8))
    netlist = loads_bench(bench_text, "mult8x8")
    mapped = technology_map(netlist)
    print(f"{netlist.name}: {len(netlist)} gates -> {mapped.n_cells} CLBs, "
          f"{mapped.n_iobs} IOBs")
    print(f"library {BUDGET_LIBRARY.name}: "
          + ", ".join(f"{d.name}({d.clbs} CLB/{d.terminals} IOB @ {d.price})"
                      for d in BUDGET_LIBRARY))

    for label, threshold in (("no replication", float("inf")),
                             ("functional replication T=1", 1)):
        sol = kway_solution(
            mapped, threshold=threshold, library=BUDGET_LIBRARY,
            seed=3, n_solutions=2,
        )
        print(f"\n{label}:")
        print(f"  k = {sol.k}, cost = {sol.cost.total_cost:.0f}, "
              f"devices = {sol.cost.device_counts}")
        print(f"  CLB util {100 * sol.cost.avg_clb_utilization:.0f}%  "
              f"IOB util {100 * sol.cost.avg_iob_utilization:.0f}%  "
              f"replicated {100 * sol.replicated_fraction:.1f}%  "
              f"feasible={sol.feasible}")


if __name__ == "__main__":
    main()
