#!/usr/bin/env python3
"""Splitting a datapath that outgrows a single FPGA -- the paper's motivation.

"Large designs cannot be implemented with FPGAs unless they are partitioned
into smaller subcircuits" (Section I).  Build a 16-bit ALU + multiplier
datapath, map it, and watch the cost model choose a mixed-size device set;
then measure what functional replication buys on the interconnect between
the chips, which dominates board-level routing.

Run:  python examples/multi_fpga_datapath.py
"""

from repro import Netlist, technology_map
from repro.core.flow import kway_solution
from repro.netlist.gates import GateType
from repro.netlist.generate import alu, array_multiplier


def build_datapath() -> Netlist:
    """A 16-bit ALU and an 8x8 multiplier sharing operand buses."""
    top = Netlist("datapath16")
    a = alu("alu", 16)
    m = array_multiplier("mul", 8)
    # Inline both sub-blocks with prefixes; share the low operand bits.
    for sub, prefix in ((a, "alu_"), (m, "mul_")):
        for gate in sub.gates():
            if gate.gtype is GateType.INPUT:
                continue
            top.add_gate(prefix + gate.name, gate.gtype,
                         [_resolve(sub, prefix, f) for f in gate.fanin])
        for po in sub.outputs:
            top.add_output(prefix + po)
    for pi in ("cin", "op0", "op1"):
        top.add_input("alu_" + pi)
    for i in range(16):
        top.add_input(f"bus_a{i}")
        top.add_input(f"bus_b{i}")
    top.check()
    return top


def _resolve(sub: Netlist, prefix: str, name: str) -> str:
    """Map sub-block inputs onto the shared buses; keep internals prefixed."""
    if sub.gate(name).gtype is not GateType.INPUT:
        return prefix + name
    if name.startswith("a"):
        return f"bus_a{int(name[1:])}"
    if name.startswith("b"):
        return f"bus_b{int(name[1:])}"
    return "alu_" + name  # cin / op0 / op1


def main() -> None:
    netlist = build_datapath()
    mapped = technology_map(netlist)
    print(f"{netlist.name}: {len(netlist)} gates -> {mapped.n_cells} CLBs, "
          f"{mapped.n_iobs} IOBs, {mapped.n_nets} nets")

    from repro.partition.devices import Device, DeviceLibrary

    # Small devices force a genuinely multi-chip solution for this design.
    library = DeviceLibrary(
        [
            Device("S-40", 40, 40, 18.0, util_upper=0.93),
            Device("S-80", 80, 56, 32.0, util_upper=0.93),
            Device("S-160", 160, 80, 56.0, util_upper=0.93),
        ],
        name="small",
    )

    for label, t in (("baseline (no replication)", float("inf")),
                     ("functional replication T=0", 0)):
        sol = kway_solution(mapped, threshold=t, library=library,
                            seed=11, n_solutions=2)
        total_terms = sum(b.terminals for b in sol.blocks)
        print(f"\n{label}: k={sol.k} cost={sol.cost.total_cost:.0f} "
              f"devices={sol.cost.device_counts}")
        print(f"  board-level signal pins (sum of t_Pj) = {total_terms}  "
              f"avg IOB util = {100 * sol.cost.avg_iob_utilization:.1f}%  "
              f"replicated = {100 * sol.replicated_fraction:.1f}%")


if __name__ == "__main__":
    main()
