#!/usr/bin/env python3
"""Replication-potential analysis: Figure 3 and the unified gain model.

Walks through the paper's Section II/III machinery on real data:

1. the cell distribution d_X(psi) after technology mapping (Figure 3);
2. the maximum cell replication factor r_T for each threshold T (eq. 6);
3. the worked gain example of Figure 4 evaluated with eqs. (7)-(11).

Run:  python examples/replication_analysis.py
"""

from repro import benchmark_circuit, build_hypergraph, technology_map
from repro.experiments.figure3 import ascii_histogram
from repro.replication.gains import (
    gain_functional_output,
    gain_functional_replication,
    gain_single_move,
    gain_traditional_replication,
    make_move_vectors,
)
from repro.replication.potential import cell_distribution, max_replication_factor


def main() -> None:
    # ---- Figure 3: the distribution that makes replication worthwhile ----
    for name in ("c6288", "s5378"):
        netlist = benchmark_circuit(name, scale=0.25, seed=1)
        hg = build_hypergraph(technology_map(netlist))
        dist = cell_distribution(hg)
        print(ascii_histogram(dist))
        for t in (0, 1, 2, 3):
            r_t = max_replication_factor(dist, t)
            print(f"    r_T for T={t}: {r_t} replication candidates "
                  f"({100 * r_t / dist.n_cells:.0f}% of cells)")
        print()

    # ---- Figure 4: the paper's worked example -----------------------------
    print("Figure 4 worked example (the Figure 2 cell, psi = 4):")
    mv = make_move_vectors(
        a=[(1, 1, 1, 1, 0), (0, 0, 0, 1, 1)],  # A_X1, A_X2
        ci=(0, 0, 0, 1, 1),                     # input nets a4, a5 in the cut
        qi=(1, 1, 1, 1, 1),
        co=(0, 1),                              # output X2 in the cut
        qo=(1, 1),
    )
    print(f"  single cell move        G_m  = {gain_single_move(mv):+d}  (paper: -1)")
    print(f"  traditional replication G_tr = {gain_traditional_replication(mv):+d}  (paper: -2)")
    print(f"  functional, take X1     G_X1 = {gain_functional_output(mv, 0):+d}  (paper: -4)")
    print(f"  functional, take X2     G_X2 = {gain_functional_output(mv, 1):+d}  (paper: +2)")
    gain, output = gain_functional_replication(mv)
    print(f"  best replication        G_r  = {gain:+d} via output #{output + 1} "
          f"(cut shrinks 3 -> 1)")


if __name__ == "__main__":
    main()
