"""Ablation: the threshold replication potential T (eq. 6).

DESIGN.md calls out T as the paper's main replication knob.  Sweep T over
the equal-size bipartition experiment and check the monotone trend the
paper reports: more replication freedom (smaller T) gives smaller or equal
cuts, at the price of more replicated cells.
"""

import statistics

from benchmarks.conftest import run_once
from repro.core.flow import bipartition_experiment
from repro.experiments.common import load_suite

THRESHOLDS = (0, 1, 2, 3, float("inf"))
RUNS = 3


def test_bench_threshold_sweep(benchmark, circuits, scale):
    suite = load_suite(circuits[:2], scale)

    def compute():
        rows = {}
        for sc in suite:
            per_t = {}
            for t in THRESHOLDS:
                report = bipartition_experiment(
                    sc.mapped, "fm+functional", runs=RUNS, threshold=t, seed=5
                )
                per_t[t] = (report.avg_cut, report.avg_replicated)
            rows[sc.name] = per_t
        return rows

    rows = run_once(benchmark, compute)
    print()
    for name, per_t in rows.items():
        line = "  ".join(
            f"T={t}: cut={cut:.0f} repl={rep:.0f}" for t, (cut, rep) in per_t.items()
        )
        print(f"{name}: {line}")
        # T = inf means no replication at all.
        assert per_t[float("inf")][1] == 0
        # Full freedom must not lose to no replication on average.
        assert per_t[0][0] <= per_t[float("inf")][0] * 1.05
        # Replication count shrinks (weakly) as T grows.
        reps = [per_t[t][1] for t in (0, 1, 2, 3)]
        assert all(a >= b - 1e-9 for a, b in zip(reps, reps[1:]))
