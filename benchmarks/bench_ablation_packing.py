"""Ablation: two-output CLB packing is what makes functional replication pay.

With pairing disabled every mapped cell has a single output, psi = 0
everywhere (eq. 4's m = 1 case), and functional replication degenerates to
nothing.  This bench demonstrates the dependency the paper's Section II
establishes between the cell library (multi-output cells with partial
support overlap) and the replication win.
"""

from benchmarks.conftest import run_once
from repro.core.flow import bipartition_experiment
from repro.netlist.benchmarks import benchmark_circuit
from repro.replication.potential import cell_distribution
from repro.hypergraph.build import build_hypergraph
from repro.techmap.mapped import technology_map

RUNS = 3


def test_bench_packing_ablation(benchmark, scale):
    netlist = benchmark_circuit("s5378", scale=min(scale, 0.3), seed=3)

    def compute():
        paired = technology_map(netlist, pair=True)
        single = technology_map(netlist, pair=False)
        dist_paired = cell_distribution(build_hypergraph(paired))
        dist_single = cell_distribution(build_hypergraph(single))
        rep_paired = bipartition_experiment(
            paired, "fm+functional", runs=RUNS, seed=1
        )
        rep_single = bipartition_experiment(
            single, "fm+functional", runs=RUNS, seed=1
        )
        return dist_paired, dist_single, rep_paired, rep_single

    dist_paired, dist_single, rep_paired, rep_single = run_once(benchmark, compute)
    # Without pairing there are no multi-output cells, hence no candidates.
    assert dist_single.single_output_zero == dist_single.n_cells
    assert rep_single.avg_replicated == 0
    # With pairing, replication candidates exist and get used.
    assert dist_paired.cells_with_potential_at_least(1) > 0
    assert rep_paired.avg_replicated > 0
    print()
    print(
        f"paired: {dist_paired.n_cells} cells, "
        f"{dist_paired.cells_with_potential_at_least(1)} with psi>=1, "
        f"avg cut {rep_paired.avg_cut:.0f}, avg replicated {rep_paired.avg_replicated:.0f}"
    )
    print(
        f"single-output: {dist_single.n_cells} cells, 0 with psi>=1, "
        f"avg cut {rep_single.avg_cut:.0f}, replication inert"
    )
