#!/usr/bin/env python
"""Incremental (ECO) repartitioning bench: warm-start vs cold solves.

Runs as a plain script (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--gate] [--out PATH]

For each workload -- Rent-style generated netlists
(``REPRO_BENCH_INCR_CELLS``, comma-separated approximate cell counts,
default ``400,600``) plus the scaled ``s5378`` benchmark -- the drill
is one ECO cycle against a throwaway cache:

1. **cold** -- a full k-way solve through ``api.run_request`` (cache
   miss, memoized);
2. **edit** -- a deterministic seeded ~1% delta
   (:func:`repro.techmap.delta.seeded_delta`);
3. **warm** -- the same request carrying the delta: nearest-ancestor
   lookup, warm-start projection + boundary repair.

Always asserted (not just under ``--gate``): the warm solve actually
took the warm path, finished at least ``SPEEDUP_FLOOR``x faster than
the cold solve, landed within ``COST_TOLERANCE`` of the cold cost, and
an immediate replay of the warm request is a pure cache hit with a
bit-identical solution document.  ``--gate`` additionally compares the
cold/warm ratio against the checked-in
``benchmarks/BENCH_incremental.baseline.json`` through the standard
speedup-ratio regression gate.  Results are written as
``BENCH_incremental.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(__file__))  # for conftest helpers

from conftest import bench_scale  # noqa: E402

from repro import api  # noqa: E402
from repro.cache.store import SolutionCache, use_cache  # noqa: E402
from repro.netlist.benchmarks import benchmark_circuit  # noqa: E402
from repro.netlist.generate import random_logic  # noqa: E402
from repro.obs.ledger import netlist_fingerprint  # noqa: E402
from repro.perf.bench import (  # noqa: E402
    DEFAULT_THRESHOLD,
    check_regressions,
    load_report,
    make_report,
    speedup,
    time_call,
    write_report,
)
from repro.request import build_request  # noqa: E402
from repro.techmap.delta import seeded_delta  # noqa: E402
from repro.techmap.mapped import technology_map  # noqa: E402

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_incremental.baseline.json"
)
REPORT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_incremental.json",
)

SEED = 7
#: Fraction of cells the ECO drill edits.
EDIT_FRACTION = 0.01
#: The warm solve must beat the cold solve by at least this ratio.
SPEEDUP_FLOOR = 3.0
#: ...and its total device cost must stay within this band of cold.
COST_TOLERANCE = 0.25
#: Rough techmap ratio on Rent-generated netlists: gates per CLB cell.
GATES_PER_CELL = 2.1


def incr_cell_targets():
    """Approximate Rent-netlist cell counts from ``REPRO_BENCH_INCR_CELLS``.

    The defaults deliberately stay in the regime where the cold carve
    leaves IOB slack (small k): on terminal-saturated designs the warm
    path correctly *declines* (see ``docs/INCREMENTAL.md``), which is
    the fallback drill, not the speedup drill this bench gates.
    """
    raw = os.environ.get("REPRO_BENCH_INCR_CELLS", "400,600")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _workloads(scale):
    """``(name, netlist)`` pairs: Rent netlists plus scaled s5378."""
    suite = []
    for cells in incr_cell_targets():
        n_gates = int(cells * GATES_PER_CELL)
        n_io = max(1, n_gates // 50)
        name = f"rent{cells}"
        suite.append((name, random_logic(name, n_gates, n_io, n_io, seed=9)))
    suite.append(("s5378", benchmark_circuit("s5378", scale=scale, seed=SEED)))
    return suite


def _eco_cycle(name, netlist):
    """One cold -> edit -> warm -> replay drill; returns the report section."""
    mapped = technology_map(netlist)
    request = build_request(
        "partition", name, seed=SEED, threshold=1, n_solutions=1
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-incr-") as cache_dir:
        with use_cache(SolutionCache(cache_dir)):
            cold_seconds, cold = time_call(
                lambda: api.run_request(request, circuit=netlist, cache="use")
            )
            assert cold.cache_info.get("status") == "miss", (
                f"{name}: cold solve should miss, got {cold.cache_info}"
            )

            delta = seeded_delta(
                mapped,
                fraction=EDIT_FRACTION,
                seed=0,
                base=netlist_fingerprint(mapped),
            )
            eco_request = build_request(
                "partition", name, seed=SEED, threshold=1, n_solutions=1,
                delta=delta.to_dict(),
            )
            warm_seconds, warm = time_call(
                lambda: api.run_request(eco_request, circuit=netlist, cache="use")
            )
            warm_info = (warm.cache_info or {}).get("warm") or {}
            assert warm_info.get("mode") == "warm", (
                f"{name}: expected a warm-start solve, got {warm_info}"
            )

            replay = api.run_request(eco_request, circuit=netlist, cache="use")
            assert replay.cache_info.get("status") == "hit", (
                f"{name}: warm replay should be a pure cache hit, "
                f"got {replay.cache_info}"
            )
            warm_doc = json.dumps(warm.to_dict()["solution"], sort_keys=True)
            replay_doc = json.dumps(replay.to_dict()["solution"], sort_keys=True)
            assert warm_doc == replay_doc, (
                f"{name}: warm replay is not bit-identical"
            )

    cold_cost = cold.solution.cost.total_cost
    warm_cost = warm.solution.cost.total_cost
    ratio = speedup(cold_seconds, warm_seconds)
    assert ratio >= SPEEDUP_FLOOR, (
        f"{name}: warm solve only {ratio:.2f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR:.0f}x; cold {cold_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s)"
    )
    assert warm_cost <= cold_cost * (1.0 + COST_TOLERANCE), (
        f"{name}: warm cost {warm_cost:.0f} outside the "
        f"{COST_TOLERANCE:.0%} band of cold cost {cold_cost:.0f}"
    )
    return {
        "ref_seconds": round(cold_seconds, 4),
        "fast_seconds": round(warm_seconds, 4),
        "speedup": round(ratio, 3),
        "cold_cost": cold_cost,
        "warm_cost": warm_cost,
        "dirty_cells": int(warm_info.get("dirty_cells", 0)),
        "replay_identical": True,
    }


def run_bench(scale):
    per_circuit = {}
    for name, netlist in _workloads(scale):
        section = _eco_cycle(name, netlist)
        per_circuit[name] = {"incremental": section}
        print(
            f"{name:10s} warm {section['speedup']:6.2f}x "
            f"(cold {section['ref_seconds']:.2f}s / "
            f"warm {section['fast_seconds']:.2f}s), "
            f"{section['dirty_cells']} dirty cells, "
            f"cost {section['cold_cost']:.0f} -> {section['warm_cost']:.0f}, "
            "replay bit-identical"
        )
    return make_report(scale, per_circuit)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=REPORT_PATH,
        help="report path (default: BENCH_incremental.json at the repo root)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=f"fail when slower than {BASELINE_PATH} beyond the threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed relative slowdown before --gate fails (default 0.30)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="also refresh the checked-in baseline with this run",
    )
    args = parser.parse_args(argv)

    report = run_bench(bench_scale())
    write_report(args.out, report)
    print(f"wrote {args.out}")
    if args.write_baseline:
        write_report(BASELINE_PATH, report)
        print(f"wrote {BASELINE_PATH}")

    if args.gate:
        if not os.path.exists(BASELINE_PATH):
            print(f"no baseline at {BASELINE_PATH}; skipping gate")
            return 0
        problems = check_regressions(
            report, load_report(BASELINE_PATH), threshold=args.threshold
        )
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
