"""Bench for Figure 3: replication-potential distribution per circuit.

Shape targets from the paper: single-output cells are a minority, roughly
10% or less of cells are multi-output with psi = 0, and the bulk of cells
have psi >= 1 (these drive the interconnect reductions).
"""

from benchmarks.conftest import run_once
from repro.experiments import figure3


def test_bench_figure3(benchmark, circuits, scale):
    result = run_once(benchmark, lambda: figure3.run(circuits, scale))
    assert len(result.rows) == len(circuits)
    for row in result.rows:
        single_pct, multi_zero_pct = row[2], row[3]
        replicable_pct = 100.0 - single_pct - multi_zero_pct
        # Most cells must be functional-replication candidates (psi >= 1).
        assert replicable_pct > 40.0, row[0]
        assert multi_zero_pct < 25.0, row[0]
    print()
    print(result.text())
