"""Bench for the paper's worked examples (Figures 1, 2 and 4).

Micro-bench of the gain machinery on the exact scenarios of the paper; the
assertions pin the published numbers: G_m = -1, G_tr = -2, G_X1 = -4,
G_X2 = +2, G_r = +2, and cut 3 -> 1 when the replication is applied.
"""

from repro.replication.gains import (
    gain_functional_replication,
    gain_single_move,
    gain_traditional_replication,
    make_move_vectors,
)


def _paper_vectors():
    return make_move_vectors(
        a=[(1, 1, 1, 1, 0), (0, 0, 0, 1, 1)],
        ci=(0, 0, 0, 1, 1),
        qi=(1, 1, 1, 1, 1),
        co=(0, 1),
        qo=(1, 1),
    )


def test_bench_gain_formulas(benchmark):
    mv = _paper_vectors()

    def compute():
        return (
            gain_single_move(mv),
            gain_traditional_replication(mv),
            gain_functional_replication(mv),
        )

    g_m, g_tr, (g_r, output) = benchmark(compute)
    assert g_m == -1
    assert g_tr == -2
    assert (g_r, output) == (2, 1)


def test_bench_figure4_engine(benchmark):
    from tests.test_paper_figures import _figure4_engine

    def compute():
        engine, m = _figure4_engine()
        gain = engine.run_pass()
        return gain, engine.cut_size()

    gain, cut = benchmark(compute)
    assert gain == 2
    assert cut == 1
