#!/usr/bin/env python
"""Hot-path perf bench: optimized partitioning core vs reference engines.

Runs as a plain script (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_fm_hot.py [--gate] [--out PATH]

For each bench circuit (``REPRO_BENCH_CIRCUITS``, default the quick
subset) at ``REPRO_BENCH_SCALE`` (default 0.25) it times, in one process:

* plain FM multi-start (``fm_bipartition`` vs ``reference_fm_bipartition``);
* replication-aware FM (``replication_bipartition`` vs reference);
* the full k-way carve (``engine="fast"`` vs ``engine="reference"``);

asserts that fast and reference produce **identical** results (cut sizes,
replica sets, device assignment, total cost, verification status), writes
``BENCH_partition.json``, and with ``--gate`` fails (exit 1) when the
machine-normalized wall-clock regresses more than 30% against the
checked-in ``benchmarks/BENCH_partition.baseline.json``.

On top of the paper circuits it benches the multilevel V-cycle against
flat fast FM on Rent-style generated netlists (``REPRO_BENCH_ML_CELLS``,
comma-separated approximate cell counts, default ``10000``; empty skips).
The V-cycle must match or beat flat FM's mean cut at every size and, at
50k+ cells, be at least 5x faster.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # for conftest helpers

from conftest import bench_circuits, bench_scale  # noqa: E402

from repro.core.flow import map_circuit  # noqa: E402
from repro.hypergraph.build import build_hypergraph  # noqa: E402
from repro.partition.fm import (  # noqa: E402
    FMConfig,
    best_of_runs as fm_best_of_runs,
    fm_bipartition,
)
from repro.partition.fm_replication import (  # noqa: E402
    ReplicationConfig,
    ReplicationTables,
    replication_bipartition,
)
from repro.partition.kway import KWayConfig, partition_heterogeneous  # noqa: E402
from repro.partition.reference import (  # noqa: E402
    reference_fm_bipartition,
    reference_replication_bipartition,
)
from repro.partition.verify import verify_solution  # noqa: E402
from repro.perf.bench import (  # noqa: E402
    DEFAULT_THRESHOLD,
    best_of,
    check_regressions,
    default_history_path,
    default_report_path,
    load_report,
    make_report,
    speedup,
    time_call,
    write_report,
)

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_partition.baseline.json")

SEED = 3
FM_RUNS = 4
# Multilevel section: seeds averaged per netlist size, the speedup floor
# asserted on large netlists, and the size where that floor kicks in
# (small smoke sizes only gate cut quality; the V-cycle's asymptotic win
# needs room to show).
ML_SEEDS = (0, 1, 2)
ML_SPEEDUP_FLOOR = 5.0
ML_GATE_MIN_CELLS = 50_000
# Observed techmap ratio on Rent-generated netlists: gates per CLB cell.
ML_GATES_PER_CELL = 2.1
# Disabled-mode observability must stay in the noise: the estimated cost
# of the hooks, as a fraction of solver wall-clock, is gated at 3%.
OBS_OVERHEAD_LIMIT = 0.03
# The fm/replication sections are short enough to be noisy on loaded
# machines; take the best of a few repeats (deterministic workloads, so
# results are identical across repeats).  The k-way carve is long enough
# to time once.
REPEATS = 3
KWAY_REPEATS = 2


def _fm_section(hg):
    base = FMConfig(seed=SEED)

    def fast():
        best, cuts = fm_best_of_runs(hg, runs=FM_RUNS, base_config=base)
        return best, cuts

    def ref():
        results = [
            reference_fm_bipartition(
                hg, FMConfig(seed=base.seed * 7919 + run)
            )
            for run in range(FM_RUNS)
        ]
        cuts = [r.cut_size for r in results]
        best = min(results, key=lambda r: r.cut_size)
        return best, cuts

    fast_seconds, (fast_best, fast_cuts) = best_of(fast, REPEATS)
    ref_seconds, (ref_best, ref_cuts) = best_of(ref, REPEATS)
    assert fast_cuts == ref_cuts, "FM multi-start diverged from reference"
    assert fast_best.assignment == ref_best.assignment
    return {
        "fast_seconds": round(fast_seconds, 4),
        "ref_seconds": round(ref_seconds, 4),
        "speedup": round(speedup(ref_seconds, fast_seconds), 3),
        "cut": fast_best.cut_size,
    }


def _replication_section(hg):
    tables = ReplicationTables(hg)

    def config(run):
        return ReplicationConfig(seed=SEED * 7919 + run, threshold=1)

    def fast():
        return [
            replication_bipartition(hg, config(run), tables=tables)
            for run in range(FM_RUNS)
        ]

    def ref():
        return [
            reference_replication_bipartition(hg, config(run))
            for run in range(FM_RUNS)
        ]

    fast_seconds, fast_results = best_of(fast, REPEATS)
    ref_seconds, ref_results = best_of(ref, REPEATS)
    for a, b in zip(fast_results, ref_results):
        assert a.sides == b.sides, "replication FM diverged from reference"
        assert a.replicas == b.replicas
        assert a.cut_size == b.cut_size
    return {
        "fast_seconds": round(fast_seconds, 4),
        "ref_seconds": round(ref_seconds, 4),
        "speedup": round(speedup(ref_seconds, fast_seconds), 3),
        "cut": min(r.cut_size for r in fast_results),
    }


def _kway_section(mapped):
    fast_seconds, fast = best_of(
        lambda: partition_heterogeneous(
            mapped, KWayConfig(seed=SEED, engine="fast")
        ),
        KWAY_REPEATS,
    )
    ref_seconds, ref = best_of(
        lambda: partition_heterogeneous(
            mapped, KWayConfig(seed=SEED, engine="reference")
        ),
        KWAY_REPEATS,
    )

    def shape(solution):
        return [
            (b.device.name, sorted(b.cells), sorted(b.pads))
            for b in solution.blocks
        ]

    assert shape(fast) == shape(ref), "k-way carve diverged from reference"
    assert fast.cost.total_cost == ref.cost.total_cost
    violations = verify_solution(mapped, fast)
    assert not violations, f"solution failed verification: {violations}"
    return {
        "fast_seconds": round(fast_seconds, 4),
        "ref_seconds": round(ref_seconds, 4),
        "speedup": round(speedup(ref_seconds, fast_seconds), 3),
        "k": fast.k,
        "total_cost": fast.cost.total_cost,
        "feasible": fast.cost.feasible,
    }


def ml_cell_targets():
    """Approximate Rent-netlist cell counts from ``REPRO_BENCH_ML_CELLS``."""
    raw = os.environ.get("REPRO_BENCH_ML_CELLS", "10000")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _rent_suite():
    """``(name, relaxed hypergraph)`` per requested multilevel bench size."""
    from repro.netlist.generate import random_logic
    from repro.techmap.mapped import technology_map

    suite = []
    for cells in ml_cell_targets():
        n_gates = int(cells * ML_GATES_PER_CELL)
        n_io = max(1, n_gates // 50)
        name = f"rent{cells // 1000}k"
        netlist = random_logic(name, n_gates, n_io, n_io, seed=9)
        hg = build_hypergraph(technology_map(netlist), include_terminals=False)
        suite.append((name, hg))
    return suite


def _multilevel_section(hg):
    """V-cycle vs flat fast FM: same seeds, mean cut and wall-clock.

    ``ref`` here is the optimized flat engine (not the frozen reference
    module): the section measures what the multilevel algorithm buys on
    top of the already-fast FM, which is the ratio the regression gate
    tracks.  Quality is asserted directly -- the V-cycle's mean cut must
    not lose to flat FM -- and on 50k+ cell netlists the speedup floor
    (:data:`ML_SPEEDUP_FLOOR`) is asserted too.
    """
    from repro.hypergraph.compact import CompactHypergraph
    from repro.partition.multilevel import MultilevelConfig, vcycle_bipartition

    def fast():
        compact = CompactHypergraph.from_hypergraph(hg)
        return [
            vcycle_bipartition(hg, MultilevelConfig(seed=s), compact=compact)
            for s in ML_SEEDS
        ]

    def ref():
        return [fm_bipartition(hg, FMConfig(seed=s)) for s in ML_SEEDS]

    fast_seconds, ml_results = time_call(fast)
    ref_seconds, flat_results = time_call(ref)
    ml_mean = sum(r.cut_size for r in ml_results) / len(ml_results)
    flat_mean = sum(r.cut_size for r in flat_results) / len(flat_results)
    assert ml_mean <= flat_mean, (
        f"multilevel mean cut {ml_mean:.1f} lost to flat FM {flat_mean:.1f} "
        f"on {hg.n_cells} cells"
    )
    ratio = speedup(ref_seconds, fast_seconds)
    if hg.n_cells >= ML_GATE_MIN_CELLS:
        assert ratio >= ML_SPEEDUP_FLOOR, (
            f"multilevel speedup {ratio:.2f}x below the "
            f"{ML_SPEEDUP_FLOOR:.0f}x floor on {hg.n_cells} cells "
            f"(flat {ref_seconds:.2f}s vs V-cycle {fast_seconds:.2f}s)"
        )
    return {
        "fast_seconds": round(fast_seconds, 4),
        "ref_seconds": round(ref_seconds, 4),
        "speedup": round(ratio, 3),
        "cut": round(ml_mean, 1),
        "ref_cut": round(flat_mean, 1),
        "n_cells": hg.n_cells,
        "levels": ml_results[0].levels,
    }


def _obs_section(hg, mapped):
    """Observability costs: traced-run equivalence + disabled-mode overhead.

    Tracing must never change results, so a fully traced FM / replication
    / k-way run is checked bit-identical against the untraced one.  The
    disabled-mode gate then estimates the price of the instrumentation
    left in the hot path (one ``registry.enabled`` attribute check per
    hook site, tallies included) by micro-timing a check and multiplying
    by the hook executions counted in the traced run; that estimate must
    stay under ``OBS_OVERHEAD_LIMIT`` of the untraced solver wall-clock.
    """
    import time as _time

    from repro.obs.events import ListEmitter
    from repro.obs.metrics import MetricsRegistry, get_registry, use_registry
    from repro.partition.multilevel import MultilevelConfig, vcycle_bipartition

    fm_cfg = FMConfig(seed=SEED)
    repl_cfg = ReplicationConfig(seed=SEED, threshold=1)
    kway_cfg = KWayConfig(seed=SEED)
    ml_cfg = MultilevelConfig(seed=SEED)

    fm_sec, plain_fm = time_call(lambda: fm_bipartition(hg, fm_cfg))
    repl_sec, plain_repl = time_call(lambda: replication_bipartition(hg, repl_cfg))
    kway_sec, plain_kway = time_call(
        lambda: partition_heterogeneous(mapped, kway_cfg)
    )
    ml_sec, plain_ml = time_call(lambda: vcycle_bipartition(hg, ml_cfg))

    registry = MetricsRegistry(enabled=True, emitter=ListEmitter())
    with use_registry(registry):
        traced_fm = fm_bipartition(hg, fm_cfg)
        traced_repl = replication_bipartition(hg, repl_cfg)
        traced_kway = partition_heterogeneous(mapped, kway_cfg)
        traced_ml = vcycle_bipartition(hg, ml_cfg)

    assert traced_fm.assignment == plain_fm.assignment, "tracing changed FM"
    assert traced_fm.cut_size == plain_fm.cut_size
    assert traced_repl.sides == plain_repl.sides, "tracing changed replication FM"
    assert traced_repl.replicas == plain_repl.replicas
    assert traced_repl.cut_size == plain_repl.cut_size
    assert traced_ml.assignment == plain_ml.assignment, "tracing changed V-cycle"
    assert traced_ml.cut_size == plain_ml.cut_size

    def shape(solution):
        return [
            (b.device.name, sorted(b.cells), sorted(b.pads))
            for b in solution.blocks
        ]

    assert shape(traced_kway) == shape(plain_kway), "tracing changed k-way carve"
    assert traced_kway.cost.total_cost == plain_kway.cost.total_cost

    # Price of one disabled hook: an attribute check plus a tally add.
    null_registry = get_registry()
    assert not null_registry.enabled
    checks = 200_000
    acc = 0
    start = _time.perf_counter()
    for _ in range(checks):
        if null_registry.enabled:
            acc += 1
    per_check = (_time.perf_counter() - start) / checks

    counters = registry.snapshot().get("counters", {})
    hooks = (
        counters.get("fm.moves", 0)
        + counters.get("repl.moves.single", 0)
        + counters.get("repl.moves.replicate", 0)
        + counters.get("repl.moves.unreplicate", 0)
        + counters.get("repl.sgain_updates", 0)
        + 4 * (counters.get("fm.passes", 0) + counters.get("repl.passes", 0))
        + 8 * (counters.get("fm.runs", 0) + counters.get("repl.runs", 0))
        + 8 * counters.get("kway.candidates", 0)
        # V-cycle hooks: spans + the per-level ml.level event + counters,
        # all O(levels) per solve.
        + 8
        * (
            counters.get("multilevel.levels", 0)
            + counters.get("multilevel.vcycles", 0)
        )
    )
    solver_seconds = fm_sec + repl_sec + kway_sec + ml_sec
    overhead = per_check * hooks / max(solver_seconds, 1e-9)
    assert overhead < OBS_OVERHEAD_LIMIT, (
        f"disabled-mode observability overhead {overhead:.2%} exceeds "
        f"{OBS_OVERHEAD_LIMIT:.0%} ({hooks} hooks x {per_check * 1e9:.1f}ns "
        f"over {solver_seconds:.3f}s of solver time)"
    )
    return {
        "per_check_ns": round(per_check * 1e9, 2),
        "hooks": hooks,
        "solver_seconds": round(solver_seconds, 4),
        "overhead_fraction": round(overhead, 6),
        "limit": OBS_OVERHEAD_LIMIT,
        "traced_identical": True,
    }


def run_bench(scale, circuits):
    per_circuit = {}
    obs_entry = None
    for name in circuits:
        mapped = map_circuit(name, scale=scale)
        hg = build_hypergraph(mapped, include_terminals=False)
        entry = {
            "fm": _fm_section(hg),
            "replication": _replication_section(hg),
            "kway": _kway_section(mapped),
        }
        per_circuit[name] = entry
        if obs_entry is None:
            obs_entry = _obs_section(hg, mapped)
            print(
                f"{name:8s} obs: {obs_entry['hooks']} hooks x "
                f"{obs_entry['per_check_ns']:.1f}ns = "
                f"{100 * obs_entry['overhead_fraction']:.3f}% of "
                f"{obs_entry['solver_seconds']:.2f}s (limit "
                f"{100 * obs_entry['limit']:.0f}%), traced run identical"
            )
        print(
            f"{name:8s} fm {entry['fm']['speedup']:5.2f}x  "
            f"repl {entry['replication']['speedup']:5.2f}x  "
            f"kway {entry['kway']['speedup']:5.2f}x "
            f"(fast {entry['kway']['fast_seconds']:.2f}s / "
            f"ref {entry['kway']['ref_seconds']:.2f}s)"
        )
    for name, hg in _rent_suite():
        section = _multilevel_section(hg)
        per_circuit[name] = {"multilevel": section}
        print(
            f"{name:8s} multilevel {section['speedup']:5.2f}x on "
            f"{section['n_cells']} cells, {section['levels']} levels "
            f"(V-cycle {section['fast_seconds']:.2f}s / "
            f"flat {section['ref_seconds']:.2f}s, "
            f"cut {section['cut']:.0f} vs {section['ref_cut']:.0f})"
        )
    report = make_report(scale, per_circuit)
    if obs_entry is not None:
        report["obs"] = obs_entry
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=default_report_path(),
        help="report path (default: BENCH_partition.json at the repo root)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=f"fail when slower than {BASELINE_PATH} beyond the threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed relative slowdown before --gate fails (default 0.30)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="also refresh the checked-in baseline with this run",
    )
    parser.add_argument(
        "--history",
        default=default_history_path(),
        help="bench trajectory JSONL to append to "
        "(default: BENCH_partition_history.jsonl at the repo root)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending to the bench trajectory",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    circuits = bench_circuits()
    report = run_bench(scale, circuits)
    history_path = None if args.no_history else args.history
    write_report(args.out, report, history_path=history_path)
    print(f"wrote {args.out}")
    if history_path:
        print(f"appended history entry to {history_path}")
    if args.write_baseline:
        write_report(BASELINE_PATH, report)
        print(f"wrote {BASELINE_PATH}")

    if args.gate:
        if not os.path.exists(BASELINE_PATH):
            print(f"no baseline at {BASELINE_PATH}; skipping gate")
            return 0
        problems = check_regressions(
            report, load_report(BASELINE_PATH), threshold=args.threshold
        )
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
