#!/usr/bin/env python
"""Hot-path perf bench: optimized partitioning core vs reference engines.

Runs as a plain script (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_fm_hot.py [--gate] [--out PATH]

For each bench circuit (``REPRO_BENCH_CIRCUITS``, default the quick
subset) at ``REPRO_BENCH_SCALE`` (default 0.25) it times, in one process:

* plain FM multi-start (``fm_bipartition`` vs ``reference_fm_bipartition``);
* replication-aware FM (``replication_bipartition`` vs reference);
* the full k-way carve (``engine="fast"`` vs ``engine="reference"``);

asserts that fast and reference produce **identical** results (cut sizes,
replica sets, device assignment, total cost, verification status), writes
``BENCH_partition.json``, and with ``--gate`` fails (exit 1) when the
machine-normalized wall-clock regresses more than 30% against the
checked-in ``benchmarks/BENCH_partition.baseline.json``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))  # for conftest helpers

from conftest import bench_circuits, bench_scale  # noqa: E402

from repro.core.flow import map_circuit  # noqa: E402
from repro.hypergraph.build import build_hypergraph  # noqa: E402
from repro.partition.fm import (  # noqa: E402
    FMConfig,
    best_of_runs as fm_best_of_runs,
    fm_bipartition,
)
from repro.partition.fm_replication import (  # noqa: E402
    ReplicationConfig,
    ReplicationTables,
    replication_bipartition,
)
from repro.partition.kway import KWayConfig, partition_heterogeneous  # noqa: E402
from repro.partition.reference import (  # noqa: E402
    reference_fm_bipartition,
    reference_replication_bipartition,
)
from repro.partition.verify import verify_solution  # noqa: E402
from repro.perf.bench import (  # noqa: E402
    DEFAULT_THRESHOLD,
    best_of,
    check_regressions,
    default_history_path,
    default_report_path,
    load_report,
    make_report,
    speedup,
    time_call,
    write_report,
)

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_partition.baseline.json")

SEED = 3
FM_RUNS = 4
# Disabled-mode observability must stay in the noise: the estimated cost
# of the hooks, as a fraction of solver wall-clock, is gated at 3%.
OBS_OVERHEAD_LIMIT = 0.03
# The fm/replication sections are short enough to be noisy on loaded
# machines; take the best of a few repeats (deterministic workloads, so
# results are identical across repeats).  The k-way carve is long enough
# to time once.
REPEATS = 3
KWAY_REPEATS = 2


def _fm_section(hg):
    base = FMConfig(seed=SEED)

    def fast():
        best, cuts = fm_best_of_runs(hg, runs=FM_RUNS, base_config=base)
        return best, cuts

    def ref():
        results = [
            reference_fm_bipartition(
                hg, FMConfig(seed=base.seed * 7919 + run)
            )
            for run in range(FM_RUNS)
        ]
        cuts = [r.cut_size for r in results]
        best = min(results, key=lambda r: r.cut_size)
        return best, cuts

    fast_seconds, (fast_best, fast_cuts) = best_of(fast, REPEATS)
    ref_seconds, (ref_best, ref_cuts) = best_of(ref, REPEATS)
    assert fast_cuts == ref_cuts, "FM multi-start diverged from reference"
    assert fast_best.assignment == ref_best.assignment
    return {
        "fast_seconds": round(fast_seconds, 4),
        "ref_seconds": round(ref_seconds, 4),
        "speedup": round(speedup(ref_seconds, fast_seconds), 3),
        "cut": fast_best.cut_size,
    }


def _replication_section(hg):
    tables = ReplicationTables(hg)

    def config(run):
        return ReplicationConfig(seed=SEED * 7919 + run, threshold=1)

    def fast():
        return [
            replication_bipartition(hg, config(run), tables=tables)
            for run in range(FM_RUNS)
        ]

    def ref():
        return [
            reference_replication_bipartition(hg, config(run))
            for run in range(FM_RUNS)
        ]

    fast_seconds, fast_results = best_of(fast, REPEATS)
    ref_seconds, ref_results = best_of(ref, REPEATS)
    for a, b in zip(fast_results, ref_results):
        assert a.sides == b.sides, "replication FM diverged from reference"
        assert a.replicas == b.replicas
        assert a.cut_size == b.cut_size
    return {
        "fast_seconds": round(fast_seconds, 4),
        "ref_seconds": round(ref_seconds, 4),
        "speedup": round(speedup(ref_seconds, fast_seconds), 3),
        "cut": min(r.cut_size for r in fast_results),
    }


def _kway_section(mapped):
    fast_seconds, fast = best_of(
        lambda: partition_heterogeneous(
            mapped, KWayConfig(seed=SEED, engine="fast")
        ),
        KWAY_REPEATS,
    )
    ref_seconds, ref = best_of(
        lambda: partition_heterogeneous(
            mapped, KWayConfig(seed=SEED, engine="reference")
        ),
        KWAY_REPEATS,
    )

    def shape(solution):
        return [
            (b.device.name, sorted(b.cells), sorted(b.pads))
            for b in solution.blocks
        ]

    assert shape(fast) == shape(ref), "k-way carve diverged from reference"
    assert fast.cost.total_cost == ref.cost.total_cost
    violations = verify_solution(mapped, fast)
    assert not violations, f"solution failed verification: {violations}"
    return {
        "fast_seconds": round(fast_seconds, 4),
        "ref_seconds": round(ref_seconds, 4),
        "speedup": round(speedup(ref_seconds, fast_seconds), 3),
        "k": fast.k,
        "total_cost": fast.cost.total_cost,
        "feasible": fast.cost.feasible,
    }


def _obs_section(hg, mapped):
    """Observability costs: traced-run equivalence + disabled-mode overhead.

    Tracing must never change results, so a fully traced FM / replication
    / k-way run is checked bit-identical against the untraced one.  The
    disabled-mode gate then estimates the price of the instrumentation
    left in the hot path (one ``registry.enabled`` attribute check per
    hook site, tallies included) by micro-timing a check and multiplying
    by the hook executions counted in the traced run; that estimate must
    stay under ``OBS_OVERHEAD_LIMIT`` of the untraced solver wall-clock.
    """
    import time as _time

    from repro.obs.events import ListEmitter
    from repro.obs.metrics import MetricsRegistry, get_registry, use_registry

    fm_cfg = FMConfig(seed=SEED)
    repl_cfg = ReplicationConfig(seed=SEED, threshold=1)
    kway_cfg = KWayConfig(seed=SEED)

    fm_sec, plain_fm = time_call(lambda: fm_bipartition(hg, fm_cfg))
    repl_sec, plain_repl = time_call(lambda: replication_bipartition(hg, repl_cfg))
    kway_sec, plain_kway = time_call(
        lambda: partition_heterogeneous(mapped, kway_cfg)
    )

    registry = MetricsRegistry(enabled=True, emitter=ListEmitter())
    with use_registry(registry):
        traced_fm = fm_bipartition(hg, fm_cfg)
        traced_repl = replication_bipartition(hg, repl_cfg)
        traced_kway = partition_heterogeneous(mapped, kway_cfg)

    assert traced_fm.assignment == plain_fm.assignment, "tracing changed FM"
    assert traced_fm.cut_size == plain_fm.cut_size
    assert traced_repl.sides == plain_repl.sides, "tracing changed replication FM"
    assert traced_repl.replicas == plain_repl.replicas
    assert traced_repl.cut_size == plain_repl.cut_size

    def shape(solution):
        return [
            (b.device.name, sorted(b.cells), sorted(b.pads))
            for b in solution.blocks
        ]

    assert shape(traced_kway) == shape(plain_kway), "tracing changed k-way carve"
    assert traced_kway.cost.total_cost == plain_kway.cost.total_cost

    # Price of one disabled hook: an attribute check plus a tally add.
    null_registry = get_registry()
    assert not null_registry.enabled
    checks = 200_000
    acc = 0
    start = _time.perf_counter()
    for _ in range(checks):
        if null_registry.enabled:
            acc += 1
    per_check = (_time.perf_counter() - start) / checks

    counters = registry.snapshot().get("counters", {})
    hooks = (
        counters.get("fm.moves", 0)
        + counters.get("repl.moves.single", 0)
        + counters.get("repl.moves.replicate", 0)
        + counters.get("repl.moves.unreplicate", 0)
        + counters.get("repl.sgain_updates", 0)
        + 4 * (counters.get("fm.passes", 0) + counters.get("repl.passes", 0))
        + 8 * (counters.get("fm.runs", 0) + counters.get("repl.runs", 0))
        + 8 * counters.get("kway.candidates", 0)
    )
    solver_seconds = fm_sec + repl_sec + kway_sec
    overhead = per_check * hooks / max(solver_seconds, 1e-9)
    assert overhead < OBS_OVERHEAD_LIMIT, (
        f"disabled-mode observability overhead {overhead:.2%} exceeds "
        f"{OBS_OVERHEAD_LIMIT:.0%} ({hooks} hooks x {per_check * 1e9:.1f}ns "
        f"over {solver_seconds:.3f}s of solver time)"
    )
    return {
        "per_check_ns": round(per_check * 1e9, 2),
        "hooks": hooks,
        "solver_seconds": round(solver_seconds, 4),
        "overhead_fraction": round(overhead, 6),
        "limit": OBS_OVERHEAD_LIMIT,
        "traced_identical": True,
    }


def run_bench(scale, circuits):
    per_circuit = {}
    obs_entry = None
    for name in circuits:
        mapped = map_circuit(name, scale=scale)
        hg = build_hypergraph(mapped, include_terminals=False)
        entry = {
            "fm": _fm_section(hg),
            "replication": _replication_section(hg),
            "kway": _kway_section(mapped),
        }
        per_circuit[name] = entry
        if obs_entry is None:
            obs_entry = _obs_section(hg, mapped)
            print(
                f"{name:8s} obs: {obs_entry['hooks']} hooks x "
                f"{obs_entry['per_check_ns']:.1f}ns = "
                f"{100 * obs_entry['overhead_fraction']:.3f}% of "
                f"{obs_entry['solver_seconds']:.2f}s (limit "
                f"{100 * obs_entry['limit']:.0f}%), traced run identical"
            )
        print(
            f"{name:8s} fm {entry['fm']['speedup']:5.2f}x  "
            f"repl {entry['replication']['speedup']:5.2f}x  "
            f"kway {entry['kway']['speedup']:5.2f}x "
            f"(fast {entry['kway']['fast_seconds']:.2f}s / "
            f"ref {entry['kway']['ref_seconds']:.2f}s)"
        )
    report = make_report(scale, per_circuit)
    if obs_entry is not None:
        report["obs"] = obs_entry
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=default_report_path(),
        help="report path (default: BENCH_partition.json at the repo root)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=f"fail when slower than {BASELINE_PATH} beyond the threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed relative slowdown before --gate fails (default 0.30)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="also refresh the checked-in baseline with this run",
    )
    parser.add_argument(
        "--history",
        default=default_history_path(),
        help="bench trajectory JSONL to append to "
        "(default: BENCH_partition_history.jsonl at the repo root)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending to the bench trajectory",
    )
    args = parser.parse_args(argv)

    scale = bench_scale()
    circuits = bench_circuits()
    report = run_bench(scale, circuits)
    history_path = None if args.no_history else args.history
    write_report(args.out, report, history_path=history_path)
    print(f"wrote {args.out}")
    if history_path:
        print(f"appended history entry to {history_path}")
    if args.write_baseline:
        write_report(BASELINE_PATH, report)
        print(f"wrote {BASELINE_PATH}")

    if args.gate:
        if not os.path.exists(BASELINE_PATH):
            print(f"no baseline at {BASELINE_PATH}; skipping gate")
            return 0
        problems = check_regressions(
            report, load_report(BASELINE_PATH), threshold=args.threshold
        )
        if problems:
            for problem in problems:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
