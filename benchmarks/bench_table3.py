"""Bench for Table III: cut-set reduction from functional replication.

Shape targets (paper): average best-cut reduction ~35%, average avg-cut
reduction ~33%, consistently positive, larger on the clustered sequential
circuits.  Absolute cuts differ (synthetic circuits, reduced scale); the
reductions are the reproduction target, so the bench asserts on them.
"""

import os

from benchmarks.conftest import run_once
from repro.experiments import table3

RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "5"))


def test_bench_table3(benchmark, circuits, scale):
    result = run_once(benchmark, lambda: table3.run(circuits, scale, runs=RUNS))
    avg_row = result.rows[-1]
    best_reduction, avg_reduction = avg_row[-2], avg_row[-1]
    # The headline result: functional replication cuts the cut set by a
    # large margin on average.
    assert best_reduction > 10.0
    assert avg_reduction > 10.0
    for row in result.rows[:-1]:
        assert row[3] <= row[1]  # FR best never worse than FM best
    print()
    print(result.text())
