"""Bench for Table VI: total device cost vs the no-replication baseline.

Shape target (paper): with replication the total cost is equal or lower
for nearly every circuit at at least one threshold setting; it never
explodes (the paper's worst case is a mild increase on one circuit).
"""

from benchmarks.conftest import run_once
from repro.experiments import tables4to7


def test_bench_table6(benchmark, circuits, scale):
    def compute():
        data = tables4to7.sweep(circuits, scale, n_solutions=1, seeds_per_carve=2, devices_per_carve=2)
        return tables4to7.table6(data, scale)

    result = run_once(benchmark, compute)
    for row in result.rows[:-1]:
        base = row[1]
        costs = [row[2], row[4], row[6]]
        # Replication never costs more than 25% extra at the best T...
        assert min(costs) <= base * 1.25
    # ...and on average it does not increase the cost.
    avg_row = result.rows[-1]
    best_avg_reduction = max(avg_row[3], avg_row[5], avg_row[7])
    assert best_avg_reduction >= -5.0
    print()
    print(result.text())
