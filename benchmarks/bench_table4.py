"""Bench for Table IV: percentage of replicated cells and CPU cost.

Shape targets (paper): replication stays moderate -- per-circuit
percentages in the single digits to ~15%, averages a few percent -- and the
replication-enabled flow costs more CPU than the baseline.
"""

from benchmarks.conftest import run_once
from repro.experiments import tables4to7


def test_bench_table4(benchmark, circuits, scale):
    def compute():
        data = tables4to7.sweep(circuits, scale, n_solutions=1, seeds_per_carve=2, devices_per_carve=2)
        return tables4to7.table4(data, scale), data

    result, data = run_once(benchmark, compute)
    avg_row = result.rows[-1]
    for pct in avg_row[1:-2]:
        assert 0.0 <= pct <= 30.0  # moderate replication on average
    # No-replication baseline really replicates nothing.
    for name in {n for n, _ in data}:
        assert data[(name, tables4to7.INF)].replicated_fraction == 0.0
    print()
    print(result.text())
