"""Ablation: multilevel clustering + replication (the paper's suggested combo).

The paper's conclusion: combining functional replication with clustering
"may potentially reduce the size of the cut even further".  Compare flat
FM, multilevel FM, and multilevel FM finished with a functional-replication
refinement pass; the combined flow should dominate.
"""

import statistics

from benchmarks.conftest import run_once
from repro.experiments.common import load_suite
from repro.partition.clustering import MultilevelConfig, multilevel_bipartition
from repro.partition.fm import FMConfig, fm_bipartition

SEEDS = (0, 1, 2)


def test_bench_multilevel(benchmark, circuits, scale):
    suite = load_suite(circuits[:3], scale)

    def compute():
        rows = {}
        for sc in suite:
            flat = statistics.mean(
                fm_bipartition(sc.hg_relaxed, FMConfig(seed=s)).cut_size
                for s in SEEDS
            )
            ml = statistics.mean(
                multilevel_bipartition(
                    sc.hg_relaxed, MultilevelConfig(seed=s)
                ).cut_size
                for s in SEEDS
            )
            ml_repl = statistics.mean(
                multilevel_bipartition(
                    sc.hg_relaxed,
                    MultilevelConfig(seed=s, replication_refine=True),
                ).final_cut
                for s in SEEDS
            )
            rows[sc.name] = (flat, ml, ml_repl)
        return rows

    rows = run_once(benchmark, compute)
    print()
    for name, (flat, ml, ml_repl) in rows.items():
        print(f"{name}: flat FM={flat:.0f}  multilevel={ml:.0f}  "
              f"multilevel+replication={ml_repl:.0f}")
    flat_avg = statistics.mean(r[0] for r in rows.values())
    ml_avg = statistics.mean(r[1] for r in rows.values())
    mlr_avg = statistics.mean(r[2] for r in rows.values())
    assert ml_avg <= flat_avg * 1.05
    assert mlr_avg <= ml_avg  # replication refinement only improves
    assert mlr_avg < flat_avg  # the combined flow beats plain FM
