"""Shared configuration for the benchmark harness.

Every paper table/figure has a ``bench_*.py`` here that regenerates it via
``pytest benchmarks/ --benchmark-only``.  Benches run at a reduced *quick*
scale by default so the whole harness finishes in minutes; set environment
variables to reproduce at larger sizes::

    REPRO_BENCH_SCALE=1.0 REPRO_BENCH_CIRCUITS=all pytest benchmarks/ --benchmark-only

(the EXPERIMENTS.md record was produced by the standalone experiment CLIs,
e.g. ``python -m repro.experiments.table3 --scale 0.5``, which print the
full tables).
"""

from __future__ import annotations

import os
from typing import Tuple

import pytest

from repro.netlist.benchmarks import BENCHMARK_NAMES

#: Quick defaults: a combinational + sequential subset at reduced scale.
DEFAULT_CIRCUITS: Tuple[str, ...] = ("c3540", "c6288", "s5378", "s9234")
DEFAULT_SCALE = 0.25


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def bench_circuits() -> Tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_CIRCUITS", "")
    if not raw:
        return DEFAULT_CIRCUITS
    if raw.strip().lower() == "all":
        return BENCHMARK_NAMES
    return tuple(name.strip() for name in raw.split(",") if name.strip())


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def circuits() -> Tuple[str, ...]:
    return bench_circuits()


@pytest.fixture(scope="session")
def suite(circuits, scale):
    from repro.experiments.common import load_suite

    return load_suite(circuits, scale)


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
