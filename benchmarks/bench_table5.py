"""Bench for Table V: average CLB utilization vs the no-replication baseline.

Shape target (paper): replication raises average CLB utilization by a few
points (77% -> at most ~83%); it must never halve utilization or blow past
the devices' utilization ceiling.
"""

from benchmarks.conftest import run_once
from repro.experiments import tables4to7


def test_bench_table5(benchmark, circuits, scale):
    def compute():
        data = tables4to7.sweep(circuits, scale, n_solutions=1, seeds_per_carve=2, devices_per_carve=2)
        return tables4to7.table5(data, scale)

    result = run_once(benchmark, compute)
    avg_row = result.rows[-1]
    base = avg_row[1]
    assert 0.0 < base <= 100.0
    for i in (2, 4, 6):  # T=1/2/3 utilization columns
        util = avg_row[i]
        assert util <= 100.0
        assert util >= base - 10.0  # replication should not crater utilization
    print()
    print(result.text())
