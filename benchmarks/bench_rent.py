"""Bench: Rent-exponent fidelity of the synthetic benchmark circuits.

Not a paper table -- the quantitative justification for the benchmark
substitution (DESIGN.md §2): the generators must exhibit the sub-linear
terminal growth of real circuits.  Realistic Rent exponents sit roughly in
0.3-0.75; a structureless random graph would push toward 1.0.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import load_suite
from repro.netlist.rent import fit_rent, rent_points


def test_bench_rent_exponents(benchmark, circuits, scale):
    suite = load_suite(circuits, min(scale, 0.3))

    def compute():
        fits = {}
        for sc in suite:
            fit = fit_rent(rent_points(sc.hg_relaxed, seed=1))
            fits[sc.name] = fit
        return fits

    fits = run_once(benchmark, compute)
    print()
    for name, fit in fits.items():
        assert fit is not None, name
        print(f"{name}: p = {fit.exponent:.3f} over {len(fit.points)} blocks")
        assert 0.1 < fit.exponent < 0.95, name
