"""Bench for Table I: device-library construction and report."""

from benchmarks.conftest import run_once
from repro.experiments import table1
from repro.partition.devices import XC3000_LIBRARY


def test_bench_table1(benchmark):
    result = run_once(benchmark, lambda: table1.run())
    assert len(result.rows) == len(XC3000_LIBRARY)
    # The Table I economics: strictly decreasing price per CLB.
    rates = [row[-1] for row in result.rows]
    assert all(a > b for a, b in zip(rates, rates[1:]))
    print()
    print(result.text())
