"""Benchmark harness package."""
