"""Baseline comparison: FM vs spectral vs annealing vs FM+replication.

Situates the paper's engine among the era's alternatives (its related-work
section): FM should be fast and good, spectral+FM competitive, annealing
slow, and FM + functional replication the best cut of all.
"""

import statistics
import time

from benchmarks.conftest import run_once
from repro.experiments.common import load_suite
from repro.partition.annealing import AnnealingConfig, annealing_bipartition
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.fm_replication import ReplicationConfig, replication_bipartition
from repro.partition.spectral import SpectralConfig, spectral_bipartition

SEEDS = (0, 1, 2)


def test_bench_baselines(benchmark, circuits, scale):
    suite = load_suite(circuits[:2], min(scale, 0.3))

    def compute():
        rows = {}
        for sc in suite:
            hg = sc.hg_relaxed
            timings = {}
            start = time.perf_counter()
            fm = statistics.mean(
                fm_bipartition(hg, FMConfig(seed=s)).cut_size for s in SEEDS
            )
            timings["fm"] = time.perf_counter() - start
            start = time.perf_counter()
            spectral = statistics.mean(
                spectral_bipartition(hg, SpectralConfig(seed=s)).cut_size
                for s in SEEDS
            )
            timings["spectral"] = time.perf_counter() - start
            start = time.perf_counter()
            sa = annealing_bipartition(hg, AnnealingConfig(seed=0)).cut_size
            timings["sa"] = time.perf_counter() - start
            start = time.perf_counter()
            repl = statistics.mean(
                replication_bipartition(
                    hg, ReplicationConfig(seed=s, threshold=0)
                ).cut_size
                for s in SEEDS
            )
            timings["fm+repl"] = time.perf_counter() - start
            rows[sc.name] = ({"fm": fm, "spectral": spectral, "sa": sa,
                              "fm+repl": repl}, timings)
        return rows

    rows = run_once(benchmark, compute)
    print()
    for name, (cuts, timings) in rows.items():
        print(f"{name}: " + "  ".join(
            f"{algo}={cut:.0f} ({timings[algo]:.2f}s)" for algo, cut in cuts.items()
        ))
        # The paper's engine must produce the best cut of the lineup.
        assert cuts["fm+repl"] <= min(cuts["fm"], cuts["spectral"], cuts["sa"]) * 1.05
