"""Service load harness: mixed hot/cold traffic with p50/p99 SLO gates.

Runs an in-process :class:`~repro.service.server.PartitionService` (own
event-loop thread, throwaway cache directory), warms a few tiny
partition requests, then fires a 200-request mixed workload (~85% hot
repeats / 15% cold variants) through the blocking client and reports
per-class latency percentiles.

SLOs gated with ``--gate`` (the CI ``service-smoke`` job):

* cache-hit p50 below 50 ms (hot requests are one dict lookup + one
  HTTP round trip -- if this moves, the O(1) hot path regressed);
* every request completes inside its deadline budget (no job expires,
  no request's wall latency exceeds the deadline it carried);
* the service's result document is bit-identical to a direct
  ``repro.api.run_request`` replay of the same request on the same
  store.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--gate] \
        [--requests 200] [--out benchmarks/BENCH_service.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import threading
import time

from repro import api
from repro.cache.store import SolutionCache, use_cache
from repro.request import build_request
from repro.service.client import ServiceClient
from repro.service.server import PartitionService

CIRCUIT = "s5378"
SCALE = 0.08
DEADLINE = 120.0
HOT_SEEDS = (101, 102, 103)
COLD_SEED_BASE = 500
HOT_FRACTION = 0.85

HIT_P50_SLO_S = 0.050


class _ServiceThread:
    def __init__(self, **kwargs):
        self.service = PartitionService(host="127.0.0.1", port=0, **kwargs)
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.service.start()
        self._ready.set()
        await self._stop.wait()
        await self.service.stop()

    def __enter__(self):
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("service failed to start")
        return ServiceClient(
            "127.0.0.1", self.service.port, client_id="bench", timeout=DEADLINE
        )

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(60)


def _request_for(seed):
    return build_request(
        "partition",
        CIRCUIT,
        scale=SCALE,
        seed=seed,
        threshold=1,
        n_solutions=1,
        deadline=DEADLINE,
    )


def _percentiles(samples):
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)

    def pct(p):
        return ordered[min(len(ordered) - 1, int(p * len(ordered)))]

    return {
        "count": len(samples),
        "p50_s": round(statistics.median(ordered), 6),
        "p99_s": round(pct(0.99), 6),
        "max_s": round(ordered[-1], 6),
        "mean_s": round(statistics.mean(ordered), 6),
    }


def run_bench(n_requests, cache_dir, workers=2):
    problems = []
    with _ServiceThread(
        workers=workers,
        cache="use",
        cache_dir=cache_dir,
        rate=10_000.0,
        burst=10_000.0,
        max_inflight=1_000,
    ) as client:
        # Warm-up: solve the hot set once so repeats are pure cache hits.
        warm_start = time.perf_counter()
        for seed in HOT_SEEDS:
            reply = client.submit(_request_for(seed))
            if reply["_http_status"] == 202:
                doc = client.wait(reply["job_id"], timeout=DEADLINE)
                if doc["state"] != "done":
                    problems.append(f"warm-up seed {seed} ended {doc['state']}")
        warm_seconds = time.perf_counter() - warm_start

        # Mixed workload: deterministic hot/cold interleave (~85% hot).
        hot_latencies, cold_latencies = [], []
        pending = []  # (job_id, submitted_at, deadline)
        n_hot = 0
        hot_doc = None
        for i in range(n_requests):
            hot = (i % 20) < round(HOT_FRACTION * 20)
            if hot:
                request = _request_for(HOT_SEEDS[i % len(HOT_SEEDS)])
            else:
                request = _request_for(COLD_SEED_BASE + i)
            start = time.perf_counter()
            reply = client.submit(request)
            latency = time.perf_counter() - start
            if hot:
                n_hot += 1
                hot_latencies.append(latency)
                if reply["_http_status"] != 200:
                    problems.append(
                        f"hot request {i} missed the cache "
                        f"(HTTP {reply['_http_status']})"
                    )
                elif hot_doc is None:
                    hot_doc = (request, reply["result"])
            else:
                if reply["_http_status"] == 200:
                    cold_latencies.append(latency)
                else:
                    pending.append((reply["job_id"], start, DEADLINE))
        for job_id, start, deadline in pending:
            doc = client.wait(job_id, timeout=DEADLINE)
            latency = time.perf_counter() - start
            cold_latencies.append(latency)
            if doc["state"] != "done":
                problems.append(f"cold job {job_id} ended {doc['state']}")
            elif latency > deadline:
                problems.append(
                    f"cold job {job_id} took {latency:.1f}s > {deadline}s deadline"
                )
        stats = client.stats()

    # Bit-identity: the served hot document vs a direct api replay.
    if hot_doc is None:
        problems.append("no hot request was served (cannot check bit-identity)")
    else:
        request, served = hot_doc
        with use_cache(SolutionCache(cache_dir)):
            direct = api.run_request(request, cache="use")
        if direct.cache_info.get("status") != "hit":
            problems.append("direct replay missed the service's cache")
        elif json.dumps(served, sort_keys=True) != json.dumps(
            direct.to_dict(), sort_keys=True
        ):
            problems.append("service result != direct api result")

    hit_stats = _percentiles(hot_latencies)
    report = {
        "workload": {
            "requests": n_requests,
            "hot": n_hot,
            "cold": n_requests - n_hot,
            "circuit": CIRCUIT,
            "scale": SCALE,
            "workers": workers,
            "warm_seconds": round(warm_seconds, 3),
        },
        "latency": {"hit": hit_stats, "cold": _percentiles(cold_latencies)},
        "service": stats.get("counters", {}),
        "slo": {
            "hit_p50_target_s": HIT_P50_SLO_S,
            "hit_p50_s": hit_stats.get("p50_s"),
        },
        "problems": problems,
    }
    if hit_stats.get("p50_s") is not None and hit_stats["p50_s"] > HIT_P50_SLO_S:
        problems.append(
            f"cache-hit p50 {1000 * hit_stats['p50_s']:.1f}ms "
            f"> {1000 * HIT_P50_SLO_S:.0f}ms SLO"
        )
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--gate", action="store_true", help="exit 1 on SLO misses")
    parser.add_argument(
        "--out", default="benchmarks/BENCH_service.json", metavar="PATH"
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as cache_dir:
        report = run_bench(args.requests, cache_dir, workers=args.workers)

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    hit, cold = report["latency"]["hit"], report["latency"]["cold"]
    print(f"service bench: {report['workload']['requests']} requests "
          f"({report['workload']['hot']} hot / {report['workload']['cold']} cold), "
          f"{report['workload']['workers']} workers")
    if hit.get("count"):
        print(f"  hit  p50 {1000 * hit['p50_s']:.1f}ms  "
              f"p99 {1000 * hit['p99_s']:.1f}ms  max {1000 * hit['max_s']:.1f}ms")
    if cold.get("count"):
        print(f"  cold p50 {cold['p50_s']:.2f}s  p99 {cold['p99_s']:.2f}s  "
              f"max {cold['max_s']:.2f}s")
    print(f"  counters: {report['service']}")
    print(f"  report written to {args.out}")
    for problem in report["problems"]:
        print(f"  SLO FAIL: {problem}", file=sys.stderr)
    if report["problems"] and args.gate:
        return 1
    if not report["problems"]:
        print("  all SLOs met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
