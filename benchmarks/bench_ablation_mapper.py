"""Ablation: area-greedy vs depth-optimal (FlowMap) technology mapping.

The paper maps for area (its CLB counts drive device cost); FlowMap maps
for delay.  Measure what the choice costs each way: LUT depth (FlowMap
must win), CLB count after packing, and the downstream bipartition cut.
"""

from benchmarks.conftest import run_once
from repro.hypergraph.build import build_hypergraph
from repro.netlist.benchmarks import benchmark_circuit
from repro.partition.fm_replication import ReplicationConfig, replication_bipartition
from repro.techmap.cover import cover_netlist
from repro.techmap.decompose import decompose_netlist
from repro.techmap.flowmap import flowmap_cover, lut_depth
from repro.techmap.mapped import technology_map


def test_bench_mapper_ablation(benchmark, scale):
    netlist = benchmark_circuit("s5378", scale=min(scale, 0.15), seed=3)

    def compute():
        decomposed = decompose_netlist(netlist)
        greedy = cover_netlist(decomposed)
        flow, _ = flowmap_cover(decomposed)
        depths = (lut_depth(greedy, decomposed), lut_depth(flow, decomposed))
        rows = {}
        for mapper in ("area", "depth"):
            mapped = technology_map(netlist, mapper=mapper)
            hg = build_hypergraph(mapped, include_terminals=False)
            rep = replication_bipartition(hg, ReplicationConfig(seed=1, threshold=0))
            rows[mapper] = (mapped.n_cells, rep.cut_size, rep.n_replicated)
        return depths, rows

    (greedy_depth, flow_depth), rows = run_once(benchmark, compute)
    print()
    print(f"LUT depth: greedy={greedy_depth}  flowmap={flow_depth}")
    for mapper, (clbs, cut, repl) in rows.items():
        print(f"{mapper}: CLBs={clbs}  replication cut={cut}  replicated={repl}")
    assert flow_depth <= greedy_depth  # FlowMap's guarantee
    # Both mappings feed the replication flow successfully.
    for clbs, cut, repl in rows.values():
        assert clbs > 0 and cut >= 0
