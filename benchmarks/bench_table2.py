"""Bench for Table II: benchmark characteristics after XC3000 mapping."""

from benchmarks.conftest import run_once
from repro.experiments import table2


def test_bench_table2(benchmark, circuits, scale):
    result = run_once(benchmark, lambda: table2.run(circuits, scale))
    assert len(result.rows) == len(circuits)
    for row in result.rows:
        name, clbs, iobs, dff, nets, pins = row
        assert clbs > 0 and iobs > 0 and nets > 0 and pins > 0
        if name.startswith("s"):
            assert dff > 0  # sequential circuits keep their registers
        else:
            assert dff == 0
        assert pins > nets  # every net has >= 1 sink beyond its driver
    print()
    print(result.text())
