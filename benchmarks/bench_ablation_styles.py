"""Ablation: functional vs traditional replication vs plain moves.

The paper's Section II argument (Figures 1 and 4): per replicated cell,
functional replication removes more nets from the cut than traditional
replication because it exploits the input/output dependency to drop input
nets.  The comparison is only meaningful *area-fair*: with unlimited
growth, traditional replication can duplicate whole cones (its split
semantics remove every output net from the cut) and trade unbounded area
for cut -- exactly why the paper calls its benefits "seriously limited"
after mapping, when area is a real constraint.  This bench compares the
styles under a 10% circuit-growth budget.
"""

import statistics

from benchmarks.conftest import run_once
from repro.core.flow import bipartition_experiment
from repro.experiments.common import load_suite

RUNS = 4
GROWTH_BUDGET = 0.10


def test_bench_styles(benchmark, circuits, scale):
    suite = load_suite(circuits[:3], scale)

    def compute():
        out = {}
        for sc in suite:
            out[sc.name] = {
                algo: bipartition_experiment(
                    sc.mapped, algo, runs=RUNS, seed=3, max_growth=GROWTH_BUDGET
                ).avg_cut
                for algo in ("fm", "fm+traditional", "fm+functional")
            }
        return out

    results = run_once(benchmark, compute)
    print()
    fm_avg = statistics.mean(r["fm"] for r in results.values())
    tr_avg = statistics.mean(r["fm+traditional"] for r in results.values())
    fr_avg = statistics.mean(r["fm+functional"] for r in results.values())
    for name, r in results.items():
        print(
            f"{name}: fm={r['fm']:.0f} traditional={r['fm+traditional']:.0f} "
            f"functional={r['fm+functional']:.0f}"
        )
    print(
        f"averages (growth budget {GROWTH_BUDGET:.0%}): "
        f"fm={fm_avg:.1f} traditional={tr_avg:.1f} functional={fr_avg:.1f}"
    )
    assert fr_avg <= fm_avg
    assert fr_avg <= tr_avg * 1.10  # functional at least matches traditional
