"""Ablation: k-way carve effort (candidate seeds per carve).

DESIGN.md: the reconstruction of [3] generates multiple feasible partitions
per carve and keeps the best.  More seeds per carve should give equal or
better (cost, interconnect) objectives at proportionally higher CPU.
"""

import time

from benchmarks.conftest import run_once
from repro.core.flow import kway_experiment
from repro.experiments.common import load_suite


def test_bench_carve_effort(benchmark, scale):
    suite = load_suite(("s5378",), max(scale, 0.25))
    mapped = suite[0].mapped

    def compute():
        results = {}
        for seeds in (1, 3):
            start = time.perf_counter()
            report = kway_experiment(
                mapped, threshold=1, n_solutions=1, seeds_per_carve=seeds, seed=2
            )
            results[seeds] = (report, time.perf_counter() - start)
        return results

    results = run_once(benchmark, compute)
    print()
    for seeds, (report, elapsed) in results.items():
        print(
            f"seeds_per_carve={seeds}: cost={report.total_cost:.0f} "
            f"iob_util={100 * report.avg_iob_utilization:.1f}% "
            f"k={report.k} ({elapsed:.1f}s)"
        )
    low, high = results[1][0], results[3][0]
    # More search effort must not be dramatically worse on the cost.
    assert high.total_cost <= low.total_cost * 1.15
