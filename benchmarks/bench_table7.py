"""Bench for Table VII: average IOB utilization (eq. 2) vs baseline.

Shape target (paper): functional replication reduces the interconnect
measure for most circuits (77% -> 67% on average; per-circuit reductions
typically 4-54%, with occasional hard cases like c5315).
"""

from benchmarks.conftest import run_once
from repro.experiments import tables4to7


def test_bench_table7(benchmark, circuits, scale):
    def compute():
        data = tables4to7.sweep(circuits, scale, n_solutions=1, seeds_per_carve=2, devices_per_carve=2)
        return tables4to7.table7(data, scale)

    result = run_once(benchmark, compute)
    avg_row = result.rows[-1]
    base = avg_row[1]
    best_util = min(avg_row[2], avg_row[4], avg_row[6])
    # On average, the best threshold must not increase interconnect by more
    # than a whisker; typically it reduces it noticeably.
    assert best_util <= base * 1.10
    print()
    print(result.text())
