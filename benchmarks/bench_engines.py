"""Raw engine throughput: mapping, FM, and replication-FM speed.

These benches time the substrates individually (multiple rounds, since they
are cheap enough) so regressions in the hot loops are visible separately
from the experiment-level benches.
"""

import pytest

from repro.hypergraph.build import build_hypergraph
from repro.netlist.benchmarks import benchmark_circuit
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.fm_replication import (
    ReplicationConfig,
    replication_bipartition,
)
from repro.techmap.mapped import technology_map


@pytest.fixture(scope="module")
def netlist(scale):
    return benchmark_circuit("s5378", scale=min(scale, 0.3), seed=3)


@pytest.fixture(scope="module")
def hg(netlist):
    return build_hypergraph(technology_map(netlist), include_terminals=False)


def test_bench_technology_map(benchmark, netlist):
    mapped = benchmark(lambda: technology_map(netlist))
    assert mapped.n_cells > 0


def test_bench_fm(benchmark, hg):
    result = benchmark(lambda: fm_bipartition(hg, FMConfig(seed=1)))
    assert result.cut_size <= result.initial_cut


def test_bench_fm_replication(benchmark, hg):
    result = benchmark(
        lambda: replication_bipartition(hg, ReplicationConfig(seed=1, threshold=0))
    )
    assert result.cut_size <= result.initial_cut


def test_bench_hypergraph_build(benchmark, netlist):
    mapped = technology_map(netlist)
    hg2 = benchmark(lambda: build_hypergraph(mapped))
    assert hg2.n_cells == mapped.n_cells
